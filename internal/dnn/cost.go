package dnn

const bytesPerScalar = 4 // fp32 training

// bwEfficiency is the fraction of peak DRAM bandwidth an op kind achieves.
// Pure streaming ops run near peak; transcendental activations are limited
// by special-function-unit throughput, which throttles their effective
// streaming rate. These ratios are what make same-shape element-wise ops
// (ReLU vs Tanh vs Sigmoid) distinguishable through the time-share component
// of the side channel, exactly as their differing execution times do on real
// hardware.
func bwEfficiency(k OpKind) float64 {
	switch k {
	case OpReLU, OpReLUGrad:
		return 0.95
	case OpBiasAdd:
		return 0.88
	case OpBiasAddGrad:
		return 0.80
	case OpSigmoid, OpSigmoidGrad:
		return 0.70
	case OpTanh, OpTanhGrad:
		return 0.55
	case OpMaxPool, OpMaxPoolGrad:
		return 0.85
	case OpResidualAdd, OpResidualAddGrad:
		return 0.90
	case OpMatMul, OpMatMulGradWeights, OpMatMulGradInput:
		// Blocked GEMM reuses tiles out of L2/shared memory; even when
		// memory-bound it streams weights at well below STREAM rates.
		return 0.62
	case OpApplyGD:
		// Optimizer updates interleave several state tensors and per-element
		// transcendental math (sqrt, div), leaving them latency-bound well
		// below streaming rates — progressively more so with richer state.
		return 0.50
	case OpApplyAdagrad:
		return 0.42
	case OpApplyAdam:
		return 0.35
	case OpConv2D, OpConv2DBackpropFilter, OpConv2DBackpropInput:
		// im2col/texture-path staging costs convolutions some streaming
		// efficiency even when memory-bound.
		return 0.85
	default:
		return 1.0
	}
}

// elementwiseWorkingSet is the nominal L2-reusable footprint of a streaming
// op (loop tiles and constants only; the data itself does not revisit L2).
const elementwiseWorkingSet = 64 << 10

// convTileWorkingSet is the im2col/weight tile a conv kernel keeps hot.
const convTileWorkingSet = 256 << 10

// fillCost computes the op's FLOPs, DRAM traffic, texture traffic and L2
// working set from its shapes and hyper-parameters. The bandwidth-efficiency
// penalty of throttled ops is folded into ReadBytes/WriteBytes-derived
// durations by inflating the bytes' time cost at lowering; here we record
// raw traffic.
func (o *Op) fillCost(layer *Layer) {
	b := float64(o.Batch)
	inE := float64(o.In.Elems())
	outE := float64(o.Out.Elems())

	switch o.Kind {
	case OpConv2D:
		f := float64(o.FilterSize)
		k := float64(o.NumFilters)
		c := float64(o.In.C)
		o.FLOPs = 2 * b * outE / k * k * c * f * f // 2·B·H'·W'·K·C·F²
		weights := f * f * c * k * bytesPerScalar
		o.ReadBytes = b*inE*bytesPerScalar*1.2 + weights
		o.WriteBytes = b * outE * bytesPerScalar
		o.TexBytes = b * inE * bytesPerScalar * 0.9
		o.WorkingSetBytes = weights + convTileWorkingSet

	case OpConv2DBackpropFilter, OpConv2DBackpropInput:
		f := float64(o.FilterSize)
		k := float64(o.NumFilters)
		c := float64(o.In.C)
		o.FLOPs = 2 * b * outE / k * k * c * f * f
		weights := f * f * c * k * bytesPerScalar
		if o.Kind == OpConv2DBackpropFilter {
			// Reads input activations and output gradients, writes dW.
			o.ReadBytes = b*(inE+outE)*bytesPerScalar + weights
			o.WriteBytes = weights
		} else {
			// Reads filters and output gradients, writes dX.
			o.ReadBytes = b*outE*bytesPerScalar + weights
			o.WriteBytes = b * inE * bytesPerScalar
		}
		o.TexBytes = b * outE * bytesPerScalar * 0.7
		o.WorkingSetBytes = weights + convTileWorkingSet

	case OpMatMul, OpMatMulGradWeights, OpMatMulGradInput:
		m := inE
		n := outE
		if o.Kind == OpMatMulGradInput {
			m, n = n, m // dX = dY · Wᵀ, same cost symmetry
		}
		o.FLOPs = 2 * b * m * n
		weights := m * n * bytesPerScalar
		o.ReadBytes = b*m*bytesPerScalar + weights
		o.WriteBytes = b * n * bytesPerScalar
		if o.Kind == OpMatMulGradWeights {
			o.ReadBytes = b * (m + n) * bytesPerScalar
			o.WriteBytes = weights
		}
		o.WorkingSetBytes = weights

	case OpBiasAdd:
		o.FLOPs = b * outE
		o.ReadBytes = (b*outE + float64(o.Out.C)) * bytesPerScalar
		o.WriteBytes = b * outE * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpBiasAddGrad:
		o.FLOPs = b * inE
		o.ReadBytes = b * inE * bytesPerScalar
		o.WriteBytes = float64(o.In.C) * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpReLU, OpTanh, OpSigmoid:
		flopsPer := map[OpKind]float64{OpReLU: 1, OpTanh: 20, OpSigmoid: 12}[o.Kind]
		o.FLOPs = b * outE * flopsPer
		o.ReadBytes = b * outE * bytesPerScalar
		o.WriteBytes = b * outE * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpReLUGrad, OpTanhGrad, OpSigmoidGrad:
		flopsPer := map[OpKind]float64{OpReLUGrad: 1, OpTanhGrad: 4, OpSigmoidGrad: 3}[o.Kind]
		o.FLOPs = b * outE * flopsPer
		o.ReadBytes = 2 * b * outE * bytesPerScalar // saved activation + incoming grad
		o.WriteBytes = b * outE * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpMaxPool:
		p := 2.0
		if layer != nil && layer.PoolSize > 0 {
			p = float64(layer.PoolSize)
		}
		o.FLOPs = b * outE * p * p
		o.ReadBytes = b * inE * bytesPerScalar
		o.WriteBytes = b * outE * bytesPerScalar * 2 // values + argmax indices
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpMaxPoolGrad:
		o.FLOPs = b * inE
		o.ReadBytes = 2 * b * outE * bytesPerScalar // incoming grad + indices
		o.WriteBytes = b * inE * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpApplyGD:
		p := float64(o.Params)
		o.FLOPs = 2 * p
		o.ReadBytes = 2 * p * bytesPerScalar // w, g
		o.WriteBytes = p * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpApplyAdagrad:
		p := float64(o.Params)
		o.FLOPs = 6 * p
		o.ReadBytes = 3 * p * bytesPerScalar // w, g, accumulator
		o.WriteBytes = 2 * p * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpApplyAdam:
		p := float64(o.Params)
		o.FLOPs = 12 * p
		o.ReadBytes = 4 * p * bytesPerScalar // w, g, m, v
		o.WriteBytes = 3 * p * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet

	case OpResidualAdd, OpResidualAddGrad:
		o.FLOPs = b * outE
		o.ReadBytes = 2 * b * outE * bytesPerScalar // main path + shortcut
		o.WriteBytes = b * outE * bytesPerScalar
		o.WorkingSetBytes = elementwiseWorkingSet
	}

}

// effectiveBytes returns the read+write byte volume inflated by the op's
// bandwidth inefficiency; the lowering derives the kernel's duration from it
// while the raw byte counts still drive the performance counters.
func (o *Op) effectiveBytes() float64 {
	return (o.ReadBytes + o.WriteBytes) / bwEfficiency(o.Kind)
}

// texWorkingSet returns the texture-cache footprint of the op: only the
// texture-path convolution kernels keep state there.
func (o *Op) texWorkingSet() float64 {
	if o.TexBytes > 0 {
		return convTileWorkingSet / 2
	}
	return 0
}
