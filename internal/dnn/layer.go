package dnn

import "fmt"

// Activation selects a layer's non-linearity.
type Activation int

// Supported activation functions.
const (
	ActNone Activation = iota
	ActReLU
	ActTanh
	ActSigmoid
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case ActNone:
		return "None"
	case ActReLU:
		return "ReLU"
	case ActTanh:
		return "Tanh"
	case ActSigmoid:
		return "Sigmoid"
	}
	return fmt.Sprintf("dnn.Activation(%d)", int(a))
}

// Letter returns the activation's single-letter label (R/T/S).
func (a Activation) Letter() byte {
	switch a {
	case ActReLU:
		return 'R'
	case ActTanh:
		return 'T'
	case ActSigmoid:
		return 'S'
	}
	return '-'
}

// forwardOp returns the forward op kind of the activation.
func (a Activation) forwardOp() (OpKind, bool) {
	switch a {
	case ActReLU:
		return OpReLU, true
	case ActTanh:
		return OpTanh, true
	case ActSigmoid:
		return OpSigmoid, true
	}
	return 0, false
}

// backwardOp returns the gradient op kind of the activation.
func (a Activation) backwardOp() (OpKind, bool) {
	switch a {
	case ActReLU:
		return OpReLUGrad, true
	case ActTanh:
		return OpTanhGrad, true
	case ActSigmoid:
		return OpSigmoidGrad, true
	}
	return 0, false
}

// LayerKind selects a layer type.
type LayerKind int

// Supported layer kinds.
const (
	LayerConv LayerKind = iota + 1
	LayerFC
	LayerMaxPool
	// LayerRNN is a simple recurrent layer (shared-weight per-step MatMul +
	// Tanh). The paper states MoSConS "is not supposed to be effective on
	// RNN models due to their very different designs" (§VI limitation 6);
	// this layer exists to demonstrate exactly that.
	LayerRNN
)

// String returns the layer kind name.
func (k LayerKind) String() string {
	switch k {
	case LayerConv:
		return "Conv"
	case LayerFC:
		return "FC"
	case LayerMaxPool:
		return "MaxPool"
	case LayerRNN:
		return "RNN"
	}
	return fmt.Sprintf("dnn.LayerKind(%d)", int(k))
}

// Layer is one layer of a model together with its secret hyper-parameters
// (the attack's targets: §II-A items 1-5).
type Layer struct {
	Kind LayerKind

	// Conv hyper-parameters.
	FilterSize int // square filter edge
	NumFilters int
	Stride     int

	// FC hyper-parameter.
	Neurons int

	// Pooling window (MaxPool layers; defaults to 2 when 0).
	PoolSize int

	// Steps is the recurrent sequence length (RNN layers).
	Steps int

	// Act is the layer's activation (conv and FC layers).
	Act Activation

	// ShortcutFrom, when positive, adds a ResNet-style identity shortcut
	// from the output of the layer this many positions earlier: the layer's
	// output is element-wise added to that earlier output. The paper's
	// MoSConS cannot observe where shortcuts attach (§IV-C); the attack
	// recovers them with domain knowledge instead.
	ShortcutFrom int
}

// Conv returns a convolutional layer spec.
func Conv(filterSize, numFilters, stride int, act Activation) Layer {
	return Layer{Kind: LayerConv, FilterSize: filterSize, NumFilters: numFilters, Stride: stride, Act: act}
}

// FC returns a fully-connected layer spec.
func FC(neurons int, act Activation) Layer {
	return Layer{Kind: LayerFC, Neurons: neurons, Act: act}
}

// MaxPool returns a 2x2/stride-2 max-pooling layer spec.
func MaxPool() Layer {
	return Layer{Kind: LayerMaxPool, PoolSize: 2}
}

// RNN returns a simple recurrent layer: the input is consumed as a sequence
// of steps, each running the shared-weight cell (MatMul + Tanh); the final
// hidden state feeds the next layer.
func RNN(hidden, steps int) Layer {
	return Layer{Kind: LayerRNN, Neurons: hidden, Steps: steps, Act: ActTanh}
}

// OptimizerKind selects the model's gradient-descent optimizer (a model
// hyper-parameter the paper also recovers).
type OptimizerKind int

// Supported optimizers.
const (
	OptimizerGD OptimizerKind = iota + 1
	OptimizerAdagrad
	OptimizerAdam
)

// String returns the optimizer name.
func (o OptimizerKind) String() string {
	switch o {
	case OptimizerGD:
		return "GD"
	case OptimizerAdagrad:
		return "Adagrad"
	case OptimizerAdam:
		return "Adam"
	}
	return fmt.Sprintf("dnn.OptimizerKind(%d)", int(o))
}

// applyOp returns the optimizer's per-variable update op kind.
func (o OptimizerKind) applyOp() OpKind {
	switch o {
	case OptimizerAdagrad:
		return OpApplyAdagrad
	case OptimizerAdam:
		return OpApplyAdam
	default:
		return OpApplyGD
	}
}

// Model is a full CNN/MLP definition: the victim's intellectual property.
type Model struct {
	Name      string
	Input     Shape // per-example input (e.g. 224x224x3)
	Batch     int
	Layers    []Layer
	Optimizer OptimizerKind
}

// Validate checks the model's structural legality and returns the output
// shape of every layer (len(Layers)+1 entries, starting with the input).
func (m Model) Validate() ([]Shape, error) {
	if m.Batch <= 0 {
		return nil, fmt.Errorf("dnn: model %q: batch must be positive, got %d", m.Name, m.Batch)
	}
	if m.Input.Elems() <= 0 {
		return nil, fmt.Errorf("dnn: model %q: invalid input shape %v", m.Name, m.Input)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("dnn: model %q has no layers", m.Name)
	}
	switch m.Optimizer {
	case OptimizerGD, OptimizerAdagrad, OptimizerAdam:
	default:
		return nil, fmt.Errorf("dnn: model %q: unknown optimizer %d", m.Name, int(m.Optimizer))
	}

	shapes := make([]Shape, 0, len(m.Layers)+1)
	shapes = append(shapes, m.Input)
	cur := m.Input
	for i, l := range m.Layers {
		next, err := l.outputShape(cur)
		if err != nil {
			return nil, fmt.Errorf("dnn: model %q layer %d (%s): %w", m.Name, i, l.Kind, err)
		}
		cur = next
		shapes = append(shapes, cur)
		if l.ShortcutFrom > 0 {
			src := i - l.ShortcutFrom
			if src < -1 || src >= i {
				return nil, fmt.Errorf("dnn: model %q layer %d: shortcut from %d out of range", m.Name, i, l.ShortcutFrom)
			}
			// shapes[src+1] is the source layer's output (src == -1 means
			// the model input).
			if shapes[src+1] != cur {
				return nil, fmt.Errorf("dnn: model %q layer %d: shortcut shape %v != %v",
					m.Name, i, shapes[src+1], cur)
			}
		}
	}
	return shapes, nil
}

// outputShape computes the layer's output shape from its input shape, using
// same-padding for convolutions.
func (l Layer) outputShape(in Shape) (Shape, error) {
	switch l.Kind {
	case LayerConv:
		if in.H <= 1 && in.W <= 1 {
			return Shape{}, fmt.Errorf("conv needs spatial input, got %v", in)
		}
		if l.FilterSize <= 0 || l.NumFilters <= 0 || l.Stride <= 0 {
			return Shape{}, fmt.Errorf("conv hyper-parameters must be positive (size=%d filters=%d stride=%d)",
				l.FilterSize, l.NumFilters, l.Stride)
		}
		h := ceilDiv(in.H, l.Stride)
		w := ceilDiv(in.W, l.Stride)
		if h < 1 || w < 1 {
			return Shape{}, fmt.Errorf("stride %d collapses %v", l.Stride, in)
		}
		return Shape{H: h, W: w, C: l.NumFilters}, nil
	case LayerMaxPool:
		p := l.PoolSize
		if p == 0 {
			p = 2
		}
		if in.H < p || in.W < p {
			return Shape{}, fmt.Errorf("pool window %d larger than input %v", p, in)
		}
		return Shape{H: in.H / p, W: in.W / p, C: in.C}, nil
	case LayerFC:
		if l.Neurons <= 0 {
			return Shape{}, fmt.Errorf("fc needs positive neuron count, got %d", l.Neurons)
		}
		return Shape{H: 1, W: 1, C: l.Neurons}, nil
	case LayerRNN:
		if l.Neurons <= 0 || l.Steps <= 0 {
			return Shape{}, fmt.Errorf("rnn needs positive hidden (%d) and steps (%d)", l.Neurons, l.Steps)
		}
		if in.Elems() < l.Steps {
			return Shape{}, fmt.Errorf("rnn with %d steps cannot consume input %v", l.Steps, in)
		}
		return Shape{H: 1, W: 1, C: l.Neurons}, nil
	}
	return Shape{}, fmt.Errorf("unknown layer kind %d", int(l.Kind))
}

// Params returns the number of trainable weights of the layer given its
// input shape (excluding biases; Biases returns those).
func (l Layer) Params(in Shape) int {
	switch l.Kind {
	case LayerConv:
		return l.FilterSize * l.FilterSize * in.C * l.NumFilters
	case LayerFC:
		return in.Elems() * l.Neurons
	case LayerRNN:
		perStep := in.Elems() / l.Steps
		return (perStep + l.Neurons) * l.Neurons // shared Wx and Wh
	default:
		return 0
	}
}

// Biases returns the layer's bias count.
func (l Layer) Biases() int {
	switch l.Kind {
	case LayerConv:
		return l.NumFilters
	case LayerFC, LayerRNN:
		return l.Neurons
	default:
		return 0
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
