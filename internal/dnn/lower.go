package dnn

import "leakydnn/internal/gpu"

// victim kernels launch with enough blocks and threads to saturate any
// simulated device, as TensorFlow's cuDNN kernels do on real hardware.
const (
	victimBlocks          = 256
	victimThreadsPerBlock = 256
)

// Kernel lowers the op to a simulated GPU kernel. The kernel's duration is
// pinned to the cost model's estimate under the given device — the max of
// its compute time and its efficiency-adjusted bandwidth time — while its
// counter-visible traffic stays at the raw byte counts.
func (o *Op) Kernel(cfg gpu.DeviceConfig) gpu.KernelProfile {
	compute := o.FLOPs / cfg.FLOPsPerNs
	memory := o.effectiveBytes() / cfg.DRAMBytesPerNs
	d := compute
	if memory > d {
		d = memory
	}
	dur := gpu.Nanos(d)
	if dur < 1 {
		dur = 1
	}
	return gpu.KernelProfile{
		Name:               o.Kind.String(),
		FLOPs:              o.FLOPs,
		ReadBytes:          o.ReadBytes,
		WriteBytes:         o.WriteBytes,
		TexBytes:           o.TexBytes,
		WorkingSetBytes:    o.WorkingSetBytes,
		TexWorkingSetBytes: o.texWorkingSet(),
		Blocks:             victimBlocks,
		ThreadsPerBlock:    victimThreadsPerBlock,
		FixedDuration:      dur,
		Tag:                o,
	}
}

// IterationDuration returns the exclusive-device execution time of one full
// iteration of the compiled ops (no contention, no host gaps).
func IterationDuration(ops []Op, cfg gpu.DeviceConfig) gpu.Nanos {
	var total gpu.Nanos
	for i := range ops {
		total += ops[i].Kernel(cfg).FixedDuration
	}
	return total
}
