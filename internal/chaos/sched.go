package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"leakydnn/internal/gpu"
)

// SchedPlan is the scheduling-side fault plan: where Plan perturbs what the
// spy *measures*, SchedPlan perturbs the machinery the side channel rides on.
// Victim stalls insert host idle gaps between victim iterations, driver
// resets tear the spy's context down mid-run (channels detached, residency
// flushed, in-flight slice lost), and co-tenant churn lets background tenants
// join and leave at seeded times instead of running forever. The zero plan
// injects nothing and leaves a collection byte-identical to a clean run.
type SchedPlan struct {
	// Seed drives all scheduling-fault randomness. Zero derives the seed
	// from the co-run's seed via a key distinct from the measurement
	// injector's, so the two fault streams never alias.
	Seed int64

	// StallRate is the per-iteration probability that the victim's host
	// input pipeline stalls before that iteration starts (a slow dataloader,
	// a checkpoint write), inserting an idle gap between victim kernels.
	StallRate float64
	// StallFrac sizes each stall as a fraction of one iteration's
	// exclusive-device time; the drawn stall is uniform in
	// [0.5, 1.5] x StallFrac x iteration duration, keeping the plan
	// scale-free across platforms.
	StallFrac float64

	// OpStallRate is the per-op probability that the victim's host thread
	// stalls before launching an individual (non-first) op within an
	// iteration — a blocking host sync, an allocator hiccup — stretching
	// that op's gap without touching the iteration boundary. The first op of
	// each iteration is governed by StallRate instead, so the two stall
	// classes draw from disjoint points of the stream.
	OpStallRate float64
	// OpStallFrac sizes each op stall as a fraction of one op's average
	// exclusive-device time; the drawn stall is uniform in
	// [0.5, 1.5] x OpStallFrac x op duration.
	OpStallFrac float64

	// VictimResets is the number of victim-context driver resets injected
	// per run: at each seeded time the engine tears down the *victim's*
	// context mid-iteration. The tfsim session must rewind to the start of
	// the interrupted iteration and replay it when the context re-attaches —
	// the dual of Resets, which targets the spy.
	VictimResets int

	// Resets is the number of driver resets injected per run: at each
	// seeded time the engine tears down the spy's context. The spy's
	// watchdog must notice the outage and re-arm, losing every sample
	// window the outage overlaps.
	Resets int

	// TenantJoins is the number of background tenants that join mid-run at
	// seeded times (cycling over RunConfig.BackgroundTenants, or cloning
	// the victim's model when no roster is configured).
	TenantJoins int
	// TenantLeaves is the number of initially attached background tenants
	// that leave mid-run at seeded times; leaves beyond the configured
	// roster are dropped.
	TenantLeaves int
}

// IsZero reports whether the plan injects nothing.
func (p SchedPlan) IsZero() bool {
	return p == SchedPlan{}
}

// schedEventCap bounds per-class event counts so a hostile plan cannot make
// a run spend its whole horizon tearing contexts down.
const schedEventCap = 64

// Validate reports configuration errors.
func (p SchedPlan) Validate() error {
	if p.StallRate < 0 || p.StallRate > 1 {
		return fmt.Errorf("chaos: StallRate must be in [0, 1], got %v", p.StallRate)
	}
	if p.StallFrac < 0 || p.StallFrac > 16 {
		return fmt.Errorf("chaos: StallFrac must be in [0, 16], got %v", p.StallFrac)
	}
	if p.OpStallRate < 0 || p.OpStallRate > 1 {
		return fmt.Errorf("chaos: OpStallRate must be in [0, 1], got %v", p.OpStallRate)
	}
	if p.OpStallFrac < 0 || p.OpStallFrac > 16 {
		return fmt.Errorf("chaos: OpStallFrac must be in [0, 16], got %v", p.OpStallFrac)
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"Resets", p.Resets},
		{"TenantJoins", p.TenantJoins},
		{"TenantLeaves", p.TenantLeaves},
		{"VictimResets", p.VictimResets},
	} {
		if c.v < 0 || c.v > schedEventCap {
			return fmt.Errorf("chaos: %s must be in [0, %d], got %d", c.name, schedEventCap, c.v)
		}
	}
	return nil
}

// SchedAt returns the canonical scheduler-fault mix at the given intensity in
// [0, 1]: stalls ramp linearly, and the discrete event counts step up so any
// intensity >= 0.25 injects at least one driver reset. SchedAt(0) is the zero
// plan.
func SchedAt(intensity float64) SchedPlan {
	if intensity <= 0 {
		return SchedPlan{}
	}
	if intensity > 1 {
		intensity = 1
	}
	return SchedPlan{
		StallRate:    0.35 * intensity,
		StallFrac:    2.0 * intensity,
		Resets:       int(math.Ceil(2 * intensity)),
		TenantJoins:  int(math.Round(2 * intensity)),
		TenantLeaves: int(math.Round(intensity)),
	}
}

// SchedStats is the scheduler-fault accounting of one co-run. Every injected
// perturbation is counted at the moment it is applied, so a consumer can
// reconcile a degraded trace against the clean schedule.
type SchedStats struct {
	// ResetsInjected counts driver resets applied to the spy's context;
	// ResetsSurvived counts those the spy's watchdog recovered from by
	// re-arming its channels. Unrecovered resets leave the spy dead for the
	// rest of the run.
	ResetsInjected int
	ResetsSurvived int

	// StallsInjected counts victim input-pipeline stalls; StallTime is
	// their summed simulated duration.
	StallsInjected int
	StallTime      gpu.Nanos

	// TenantsJoined and TenantsLeft count applied churn events.
	TenantsJoined int
	TenantsLeft   int

	// SamplesLostToRecovery counts CUPTI windows discarded because they
	// overlapped a reset outage (between context teardown and the re-armed
	// channels' first launch).
	SamplesLostToRecovery int

	// OpStallsInjected counts op-granular host stalls inside iterations;
	// OpStallTime is their summed simulated duration.
	OpStallsInjected int
	OpStallTime      gpu.Nanos

	// VictimResets counts driver resets applied to the victim's context;
	// VictimOpsReplayed counts ops re-executed because their iteration was
	// interrupted mid-flight and rewound.
	VictimResets      int
	VictimOpsReplayed int
}

// ChurnEvents returns the total applied tenant churn.
func (s SchedStats) ChurnEvents() int { return s.TenantsJoined + s.TenantsLeft }

// SchedEventKind distinguishes scheduled fault events.
type SchedEventKind int

// The scheduler-fault event kinds.
const (
	SchedReset SchedEventKind = iota + 1
	SchedTenantJoin
	SchedTenantLeave
	SchedVictimReset
	SchedDeviceCrash
	SchedSpyKill
	SchedArmLoss
)

// String names the event kind.
func (k SchedEventKind) String() string {
	switch k {
	case SchedReset:
		return "reset"
	case SchedTenantJoin:
		return "tenant-join"
	case SchedTenantLeave:
		return "tenant-leave"
	case SchedVictimReset:
		return "victim-reset"
	case SchedDeviceCrash:
		return "device-crash"
	case SchedSpyKill:
		return "spy-kill"
	case SchedArmLoss:
		return "arm-loss"
	}
	return fmt.Sprintf("chaos.SchedEventKind(%d)", int(k))
}

// SchedEvent is one scheduled fault: Kind fires when simulated time reaches
// At.
type SchedEvent struct {
	At   gpu.Nanos
	Kind SchedEventKind
}

// SchedInjector applies one SchedPlan with one private RNG stream, separate
// from both the engine's scheduling RNG and the measurement injector's fault
// stream. It is not safe for concurrent use; each co-run owns its own.
type SchedInjector struct {
	plan  SchedPlan
	rng   *rand.Rand
	stats SchedStats
}

// NewSchedInjector validates the plan and seeds the injector. fallbackSeed is
// used when the plan does not pin its own seed, keyed differently from the
// measurement injector so the two streams never alias for the same co-run.
func NewSchedInjector(plan SchedPlan, fallbackSeed int64) (*SchedInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	seed := plan.Seed
	if seed == 0 {
		seed = fallbackSeed ^ 0x5c4e_d01e_ca05_1234
	}
	return &SchedInjector{plan: plan, rng: rand.New(rand.NewSource(seed))}, nil
}

// Plan returns the validated plan.
func (si *SchedInjector) Plan() SchedPlan { return si.plan }

// Stats returns the accounting so far.
func (si *SchedInjector) Stats() SchedStats { return si.stats }

// Schedule draws the plan's fault times over the estimated run [start, end)
// and returns them sorted. Times land in the middle 10%-90% of the run so an
// event never degenerates into a before-start or after-finish no-op. Call it
// once, before any StallBefore draw, so the event times are a fixed prefix of
// the injector's RNG stream.
func (si *SchedInjector) Schedule(start, end gpu.Nanos) []SchedEvent {
	if end <= start {
		end = start + 1
	}
	span := float64(end - start)
	draw := func(kind SchedEventKind, n int) []SchedEvent {
		out := make([]SchedEvent, 0, n)
		for i := 0; i < n; i++ {
			frac := 0.1 + 0.8*si.rng.Float64()
			out = append(out, SchedEvent{At: start + gpu.Nanos(frac*span), Kind: kind})
		}
		return out
	}
	var events []SchedEvent
	events = append(events, draw(SchedReset, si.plan.Resets)...)
	events = append(events, draw(SchedTenantJoin, si.plan.TenantJoins)...)
	events = append(events, draw(SchedTenantLeave, si.plan.TenantLeaves)...)
	// Victim resets draw after every pre-existing class so plans without
	// them keep their exact event times (the draw prefix is part of the
	// golden-hash contract).
	events = append(events, draw(SchedVictimReset, si.plan.VictimResets)...)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Kind < events[j].Kind
	})
	return events
}

// StallBefore draws whether the victim's next iteration is preceded by a host
// input-pipeline stall, and its length. iterDur is one iteration's
// exclusive-device time (the scale anchor). A zero-rate plan consumes no RNG
// draws, so enabling stalls never perturbs other fault classes' streams.
func (si *SchedInjector) StallBefore(iterDur gpu.Nanos) gpu.Nanos {
	if si.plan.StallRate <= 0 || si.plan.StallFrac <= 0 {
		return 0
	}
	if si.rng.Float64() >= si.plan.StallRate {
		return 0
	}
	d := gpu.Nanos(si.plan.StallFrac * float64(iterDur) * (0.5 + si.rng.Float64()))
	if d < 1 {
		d = 1
	}
	si.stats.StallsInjected++
	si.stats.StallTime += d
	return d
}

// OpStallBefore draws whether one individual (non-first) op launch is
// preceded by a host stall, and its length. opDur is the op's average
// exclusive-device time. A zero-rate plan consumes no RNG draws, so enabling
// op stalls never perturbs iteration stalls or event times, and vice versa:
// both stall classes interleave on the same stream in launch order, which is
// deterministic for a fixed plan.
func (si *SchedInjector) OpStallBefore(opDur gpu.Nanos) gpu.Nanos {
	if si.plan.OpStallRate <= 0 || si.plan.OpStallFrac <= 0 {
		return 0
	}
	if si.rng.Float64() >= si.plan.OpStallRate {
		return 0
	}
	d := gpu.Nanos(si.plan.OpStallFrac * float64(opDur) * (0.5 + si.rng.Float64()))
	if d < 1 {
		d = 1
	}
	si.stats.OpStallsInjected++
	si.stats.OpStallTime += d
	return d
}

// NoteReset counts one applied driver reset.
func (si *SchedInjector) NoteReset() { si.stats.ResetsInjected++ }

// NoteVictimReset counts one applied victim-context reset.
func (si *SchedInjector) NoteVictimReset() { si.stats.VictimResets++ }

// NoteVictimOpsReplayed counts ops replayed after a victim-context rewind.
func (si *SchedInjector) NoteVictimOpsReplayed(n int) { si.stats.VictimOpsReplayed += n }

// NoteResetSurvived counts one reset the spy recovered from.
func (si *SchedInjector) NoteResetSurvived() { si.stats.ResetsSurvived++ }

// NoteTenantJoined counts one applied tenant join.
func (si *SchedInjector) NoteTenantJoined() { si.stats.TenantsJoined++ }

// NoteTenantLeft counts one applied tenant leave.
func (si *SchedInjector) NoteTenantLeft() { si.stats.TenantsLeft++ }

// NoteSamplesLost counts sample windows discarded during reset recovery.
func (si *SchedInjector) NoteSamplesLost(n int) { si.stats.SamplesLostToRecovery += n }
