package chaos

import (
	"reflect"
	"sort"
	"testing"

	"leakydnn/internal/gpu"
)

func TestSchedZeroPlan(t *testing.T) {
	if !(SchedPlan{}).IsZero() {
		t.Fatal("zero SchedPlan not recognized")
	}
	if (SchedPlan{Resets: 1}).IsZero() {
		t.Fatal("non-zero SchedPlan reported zero")
	}
	if !SchedAt(0).IsZero() {
		t.Fatal("SchedAt(0) is not the zero plan")
	}
	p := SchedAt(0.25)
	if p.Resets < 1 {
		t.Fatalf("SchedAt(0.25) injects no reset: %+v", p)
	}
	if err := SchedAt(1).Validate(); err != nil {
		t.Fatalf("SchedAt(1) invalid: %v", err)
	}
	// A plan with a zero Sched side must not dirty the composite plan's
	// measurement-only zero check, and vice versa.
	comp := Plan{Sched: SchedPlan{Resets: 1}}
	if !comp.MeasurementIsZero() {
		t.Fatal("sched-only plan reported measurement faults")
	}
	if comp.IsZero() {
		t.Fatal("sched-only plan reported fully zero")
	}
}

func TestSchedPlanValidate(t *testing.T) {
	bad := []SchedPlan{
		{StallRate: -0.1},
		{StallRate: 1.1},
		{StallFrac: -1},
		{StallFrac: 17},
		{Resets: -1},
		{Resets: schedEventCap + 1},
		{TenantJoins: -2},
		{TenantLeaves: 1000},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("invalid plan accepted: %+v", p)
		}
		if _, err := NewSchedInjector(p, 1); err == nil {
			t.Fatalf("injector accepted invalid plan: %+v", p)
		}
	}
}

func TestSchedScheduleDrawsSortedInteriorEvents(t *testing.T) {
	plan := SchedPlan{Resets: 3, TenantJoins: 2, TenantLeaves: 2}
	si, err := NewSchedInjector(plan, 5)
	if err != nil {
		t.Fatal(err)
	}
	start, end := gpu.Nanos(1000), gpu.Nanos(101000)
	events := si.Schedule(start, end)
	if len(events) != 7 {
		t.Fatalf("drew %d events, want 7", len(events))
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].At < events[j].At }) {
		t.Fatalf("events not time-sorted: %+v", events)
	}
	span := end - start
	for _, ev := range events {
		lo := start + span/10
		hi := start + span*9/10 + 1
		if ev.At < lo || ev.At > hi {
			t.Fatalf("event %v outside the interior [%v, %v] of the run", ev, lo, hi)
		}
		if ev.Kind.String() == "" || ev.Kind < SchedReset || ev.Kind > SchedTenantLeave {
			t.Fatalf("event has bad kind: %+v", ev)
		}
	}
	counts := map[SchedEventKind]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	if counts[SchedReset] != 3 || counts[SchedTenantJoin] != 2 || counts[SchedTenantLeave] != 2 {
		t.Fatalf("event mix wrong: %v", counts)
	}
}

func TestSchedInjectorDeterministic(t *testing.T) {
	plan := SchedPlan{StallRate: 0.5, StallFrac: 1, Resets: 2, TenantJoins: 1}
	run := func() ([]SchedEvent, []gpu.Nanos) {
		si, err := NewSchedInjector(plan, 42)
		if err != nil {
			t.Fatal(err)
		}
		events := si.Schedule(0, gpu.Second)
		var stalls []gpu.Nanos
		for i := 0; i < 32; i++ {
			stalls = append(stalls, si.StallBefore(gpu.Millisecond))
		}
		return events, stalls
	}
	e1, s1 := run()
	e2, s2 := run()
	if !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("sched injector is not deterministic for a fixed seed")
	}
	// A pinned plan seed must override the fallback.
	pinned := plan
	pinned.Seed = 7
	a, _ := NewSchedInjector(pinned, 42)
	b, _ := NewSchedInjector(pinned, 1000)
	if !reflect.DeepEqual(a.Schedule(0, gpu.Second), b.Schedule(0, gpu.Second)) {
		t.Fatal("pinned plan seed did not decouple the stream from the fallback seed")
	}
}

// StallBefore must consume no RNG draws when stalls are disabled, so enabling
// resets alone cannot shift the event-time stream between runs that differ
// only in the stall knobs... and stall accounting must match what was drawn.
func TestSchedStallStreamIndependence(t *testing.T) {
	si, err := NewSchedInjector(SchedPlan{Resets: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := si.Schedule(0, gpu.Second)
	for i := 0; i < 100; i++ {
		if d := si.StallBefore(gpu.Millisecond); d != 0 {
			t.Fatal("zero-rate plan drew a stall")
		}
	}
	if s := si.Stats(); s.StallsInjected != 0 || s.StallTime != 0 {
		t.Fatalf("zero-rate plan accumulated stall stats: %+v", s)
	}
	// Re-seeded injector draws the same schedule: the no-op stalls consumed
	// nothing from the stream.
	si2, _ := NewSchedInjector(SchedPlan{Resets: 1}, 9)
	if !reflect.DeepEqual(before, si2.Schedule(0, gpu.Second)) {
		t.Fatal("schedule changed, stall no-ops consumed RNG draws")
	}

	stalled, _ := NewSchedInjector(SchedPlan{StallRate: 1, StallFrac: 0.5}, 9)
	var total gpu.Nanos
	n := 0
	for i := 0; i < 50; i++ {
		d := stalled.StallBefore(gpu.Millisecond)
		if d <= 0 {
			t.Fatal("rate-1 plan skipped a stall")
		}
		lo := gpu.Nanos(0.25 * float64(gpu.Millisecond))
		hi := gpu.Nanos(0.75 * float64(gpu.Millisecond))
		if d < lo || d > hi {
			t.Fatalf("stall %v outside [%v, %v]", d, lo, hi)
		}
		total += d
		n++
	}
	if s := stalled.Stats(); s.StallsInjected != n || s.StallTime != total {
		t.Fatalf("stall accounting mismatch: %+v vs %d/%v", s, n, total)
	}
}

func TestSchedStatsNotes(t *testing.T) {
	si, err := NewSchedInjector(SchedPlan{Resets: 2, TenantJoins: 1, TenantLeaves: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	si.NoteReset()
	si.NoteReset()
	si.NoteResetSurvived()
	si.NoteTenantJoined()
	si.NoteTenantLeft()
	si.NoteSamplesLost(5)
	si.NoteSamplesLost(2)
	want := SchedStats{
		ResetsInjected: 2, ResetsSurvived: 1,
		TenantsJoined: 1, TenantsLeft: 1,
		SamplesLostToRecovery: 7,
	}
	if got := si.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if si.Stats().ChurnEvents() != 2 {
		t.Fatalf("churn events = %d, want 2", si.Stats().ChurnEvents())
	}
}
