package chaos

import (
	"fmt"

	"leakydnn/internal/gpu"
)

// DeviceFaults is the device-level fault plan for one co-run attempt: where
// Plan perturbs what the spy measures and SchedPlan perturbs the scheduler
// under it, DeviceFaults kills whole processes. A device crash aborts the
// collection outright (the host rebooted mid-campaign); a spy kill removes
// the measuring process while the victim keeps training (OOM killer took the
// profiler); an arming-session loss invalidates the CUPTI session so no
// further windows materialize even though the spy's kernels keep running.
// Fault times are placed deterministically as fractions of the estimated
// clean run, so a given DeviceFaults value always kills at the same simulated
// instant — crash-retry tests depend on that. The zero value injects nothing.
type DeviceFaults struct {
	// CrashFrac places a whole-device crash at this fraction of the
	// estimated clean run length. Zero disables; the collection returns a
	// *DeviceCrashError carrying the crash time.
	CrashFrac float64
	// SpyKillFrac kills the spy process at this fraction of the run: its
	// contexts detach and every later sample window is lost, but the victim
	// runs to completion (the trace is honest about the missing tail).
	SpyKillFrac float64
	// ArmLossFrac invalidates the spy's CUPTI arming session at this
	// fraction of the run: kernels keep timesharing the device but no
	// counter windows materialize after the loss.
	ArmLossFrac float64
	// TenantIterations caps every background tenant's training run at this
	// many iterations, after which the tenant's context drains and leaves
	// (finite co-tenant schedules). Zero means tenants run for the whole
	// co-run, as before.
	TenantIterations int
}

// IsZero reports whether the faults inject nothing.
func (d DeviceFaults) IsZero() bool {
	return d == DeviceFaults{}
}

// Validate reports configuration errors.
func (d DeviceFaults) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CrashFrac", d.CrashFrac},
		{"SpyKillFrac", d.SpyKillFrac},
		{"ArmLossFrac", d.ArmLossFrac},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("chaos: %s must be in [0, 1), got %v", r.name, r.v)
		}
	}
	if d.TenantIterations < 0 {
		return fmt.Errorf("chaos: TenantIterations must be >= 0, got %d", d.TenantIterations)
	}
	return nil
}

// Events converts the fault plan into scheduled events over the estimated
// clean run [start, end). Placement is purely positional — no RNG is
// consumed — so device faults never perturb the measurement or scheduler
// fault streams. Events sort into the co-run's merged event list by time.
func (d DeviceFaults) Events(start, end gpu.Nanos) []SchedEvent {
	if end <= start {
		end = start + 1
	}
	span := float64(end - start)
	at := func(frac float64) gpu.Nanos {
		t := start + gpu.Nanos(frac*span)
		if t <= start {
			t = start + 1
		}
		return t
	}
	var events []SchedEvent
	if d.CrashFrac > 0 {
		events = append(events, SchedEvent{At: at(d.CrashFrac), Kind: SchedDeviceCrash})
	}
	if d.SpyKillFrac > 0 {
		events = append(events, SchedEvent{At: at(d.SpyKillFrac), Kind: SchedSpyKill})
	}
	if d.ArmLossFrac > 0 {
		events = append(events, SchedEvent{At: at(d.ArmLossFrac), Kind: SchedArmLoss})
	}
	return events
}

// DeviceCrashError is returned by a collection aborted by an injected device
// crash. The fleet supervisor matches it with errors.As and schedules a
// retry on a fresh seed stream.
type DeviceCrashError struct {
	// At is the simulated time the device died.
	At gpu.Nanos
}

// Error implements error.
func (e *DeviceCrashError) Error() string {
	return fmt.Sprintf("chaos: device crashed at t=%d", int64(e.At))
}

// DeviceStats is the device-fault accounting of one co-run, recorded in
// trace.Health so a degraded trace is honest about why its tail is missing.
type DeviceStats struct {
	// SpyKilledAt is the simulated time the spy process was killed, zero if
	// it survived. SamplesLostToSpyKill counts the windows discarded past it.
	SpyKilledAt          gpu.Nanos
	SamplesLostToSpyKill int
	// ArmSessionLostAt is the simulated time the CUPTI arming session was
	// invalidated, zero if it survived. SamplesLostToArmLoss counts the
	// windows discarded past it.
	ArmSessionLostAt     gpu.Nanos
	SamplesLostToArmLoss int
	// TenantIterationCap echoes the applied finite-tenant cap (0 = none);
	// TenantsExpired counts tenants that hit it and left.
	TenantIterationCap int
	TenantsExpired     int
}

// FleetPlan assigns DeviceFaults across a fleet campaign: per (device,
// attempt) the plan decides deterministically whether that attempt crashes,
// loses its spy, or loses its arming session, and where in the run the fault
// lands. Faults fire only on attempts below FaultyAttempts, so a supervisor
// with bounded retries always converges — the retry that finally succeeds
// draws its data from its own keyed seed stream, never re-rolling the fault
// dice into the measurement. The zero plan injects nothing anywhere.
type FleetPlan struct {
	// Seed keys the per-device fault assignment. Zero is a valid key (the
	// plan is still deterministic); distinct seeds fault different devices.
	Seed int64
	// CrashProb, SpyKillProb, ArmLossProb are per-device probabilities that
	// a faulty attempt suffers that fault class.
	CrashProb   float64
	SpyKillProb float64
	ArmLossProb float64
	// TenantIterations caps co-tenant training runs fleet-wide (finite
	// co-tenant schedules); zero leaves tenants unbounded.
	TenantIterations int
	// FaultyAttempts is how many initial attempts per device draw faults;
	// attempts >= FaultyAttempts run clean. Zero selects 1 (first attempt
	// may fault, first retry runs clean).
	FaultyAttempts int
}

// IsZero reports whether the plan injects nothing.
func (p FleetPlan) IsZero() bool {
	return p == FleetPlan{}
}

// Validate reports configuration errors.
func (p FleetPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CrashProb", p.CrashProb},
		{"SpyKillProb", p.SpyKillProb},
		{"ArmLossProb", p.ArmLossProb},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: %s must be in [0, 1], got %v", r.name, r.v)
		}
	}
	if p.TenantIterations < 0 {
		return fmt.Errorf("chaos: TenantIterations must be >= 0, got %d", p.TenantIterations)
	}
	if p.FaultyAttempts < 0 {
		return fmt.Errorf("chaos: FaultyAttempts must be >= 0, got %d", p.FaultyAttempts)
	}
	return nil
}

// FleetAt returns the canonical fleet-fault mix at the given intensity in
// [0, 1]: each kill class ramps linearly and only the first attempt faults,
// so a supervisor with >= 1 retry always completes the campaign. FleetAt(0)
// is the zero plan.
func FleetAt(intensity float64) FleetPlan {
	if intensity <= 0 {
		return FleetPlan{}
	}
	if intensity > 1 {
		intensity = 1
	}
	return FleetPlan{
		CrashProb:      0.30 * intensity,
		SpyKillProb:    0.20 * intensity,
		ArmLossProb:    0.20 * intensity,
		FaultyAttempts: 1,
	}
}

// fleetMix is a splitmix64-style keyed mixer local to chaos (eval.DeriveSeed
// lives above chaos in the import graph). Each (seed, device, attempt, class)
// tuple yields an independent uniform draw; changing any coordinate decorrelates
// the output completely, so one device's faults never depend on another's.
func fleetMix(seed int64, device, attempt, class uint64) uint64 {
	z := uint64(seed) ^ device*0x9e3779b97f4a7c15 ^ attempt*0xbf58476d1ce4e5b9 ^ class*0x94d049bb133111eb
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fleetU01 maps a mixed word to a uniform float64 in [0, 1).
func fleetU01(w uint64) float64 {
	return float64(w>>11) / (1 << 53)
}

// FaultsFor returns the fault plan for one (device, attempt) pair. Attempts
// at or beyond FaultyAttempts (default 1) are always clean. Fault classes
// draw independently; times land in the middle 25%-75% of the run so a kill
// is never a trivial before-start or after-finish no-op.
func (p FleetPlan) FaultsFor(device, attempt int) DeviceFaults {
	if p.IsZero() {
		return DeviceFaults{}
	}
	faults := DeviceFaults{TenantIterations: p.TenantIterations}
	faulty := p.FaultyAttempts
	if faulty == 0 {
		faulty = 1
	}
	if attempt >= faulty {
		return faults
	}
	d, a := uint64(device), uint64(attempt)
	frac := func(class uint64) float64 {
		return 0.25 + 0.5*fleetU01(fleetMix(p.Seed, d, a, class|0x100))
	}
	if p.CrashProb > 0 && fleetU01(fleetMix(p.Seed, d, a, 1)) < p.CrashProb {
		faults.CrashFrac = frac(1)
	}
	if p.SpyKillProb > 0 && fleetU01(fleetMix(p.Seed, d, a, 2)) < p.SpyKillProb {
		faults.SpyKillFrac = frac(2)
	}
	if p.ArmLossProb > 0 && fleetU01(fleetMix(p.Seed, d, a, 3)) < p.ArmLossProb {
		faults.ArmLossFrac = frac(3)
	}
	return faults
}
