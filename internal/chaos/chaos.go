// Package chaos is the measurement-path fault injector. The paper's channel
// is intrinsically noisy — CUPTI samples are lost when the spy is preempted,
// counters jitter and saturate under co-located work, sample and timeline
// clocks drift apart, and traces truncate when a run is killed early — but
// the simulator's clean scheduler produces pristine traces. A chaos.Plan
// re-introduces those faults deterministically (seeded, independent of the
// engine's RNG stream) at the pipeline's natural seams: the spy's channel
// arming, the CUPTI sample stream, and the sample/timeline clock relation.
// Downstream consumers (trace validation, attack.Split/Extract) must degrade
// gracefully instead of silently mis-extracting, and every injected fault is
// counted so partial traces yield partial-but-honest recoveries.
package chaos

import (
	"fmt"
	"math/rand"

	"leakydnn/internal/cupti"
	"leakydnn/internal/gpu"
)

// Plan configures the injector. The zero value disables every fault: with an
// IsZero plan no injector is built, no RNG is seeded, and the measurement
// path is bit-for-bit the clean one.
type Plan struct {
	// Seed drives all fault randomness. Zero derives the seed from the
	// co-run's seed, so distinct co-runs fault differently but reproducibly.
	Seed int64

	// DropRate is the per-sample probability that a CUPTI reading is lost
	// (the spy's host thread missed its polling deadline).
	DropRate float64
	// DupRate is the per-sample probability that a reading is delivered
	// twice (a stale buffer read re-returning the previous window).
	DupRate float64
	// JitterFrac bounds multiplicative counter jitter: each counter value is
	// scaled by a uniform factor in [1-JitterFrac, 1+JitterFrac].
	JitterFrac float64
	// SaturateFrac clips counter values: per event, values above
	// (1-SaturateFrac) times the trace-wide maximum are clamped to that cap,
	// modelling counter saturation under bursty co-located traffic.
	SaturateFrac float64

	// ArmFailRate is the per-attempt probability that arming a spy channel
	// fails (cudaErrorLaunchFailure on channel creation). The spy retries
	// with capped backoff; mandatory channels that exhaust every retry fail
	// the co-run, optional (slow-down) channels are abandoned and counted.
	ArmFailRate float64
	// ArmMaxRetries caps retries per optional channel (0 selects 4).
	ArmMaxRetries int

	// PreemptGapRate is the per-sample probability that a preemption gap
	// opens at that sample: the spy loses PreemptGapLen consecutive sampling
	// windows (it was switched out and no counters were read).
	PreemptGapRate float64
	// PreemptGapLen is the number of windows lost per gap (0 selects 3).
	PreemptGapLen int

	// ClockSkewFrac stretches the sample clock relative to the victim's
	// timeline clock: sample timestamps drift by this fraction over the
	// trace, misaligning late samples with the ground-truth timeline.
	ClockSkewFrac float64
	// TruncateFrac discards this trailing fraction of the sample stream
	// (the co-run was killed before the victim finished).
	TruncateFrac float64

	// Sched perturbs the scheduling layer instead of the measurement path:
	// victim input-pipeline stalls, driver resets of the spy's context, and
	// co-tenant churn. See SchedPlan; its zero value injects nothing.
	Sched SchedPlan

	// Device injects process-level faults — whole-device crash, spy-process
	// kill, arming-session loss, finite co-tenant schedules. See
	// DeviceFaults; its zero value injects nothing.
	Device DeviceFaults
}

// IsZero reports whether the plan injects nothing.
func (p Plan) IsZero() bool {
	return p == Plan{}
}

// MeasurementIsZero reports whether the measurement-path portion of the plan
// injects nothing (the scheduling-side SchedPlan and device-level
// DeviceFaults may still be active). With a measurement-zero plan no
// sample-stream injector is built at all, keeping the clean measurement path
// byte-identical.
func (p Plan) MeasurementIsZero() bool {
	p.Sched = SchedPlan{}
	p.Device = DeviceFaults{}
	return p == Plan{}
}

// Validate reports configuration errors.
func (p Plan) Validate() error {
	rates := []struct {
		name string
		v    float64
		max  float64
	}{
		{"DropRate", p.DropRate, 1},
		{"DupRate", p.DupRate, 1},
		{"JitterFrac", p.JitterFrac, 1},
		{"SaturateFrac", p.SaturateFrac, 1},
		// Arming retries forever at rate 1; keep a margin so mandatory
		// channels terminate.
		{"ArmFailRate", p.ArmFailRate, 0.95},
		{"PreemptGapRate", p.PreemptGapRate, 1},
		{"ClockSkewFrac", p.ClockSkewFrac, 1},
		{"TruncateFrac", p.TruncateFrac, 1},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > r.max {
			return fmt.Errorf("chaos: %s must be in [0, %v], got %v", r.name, r.max, r.v)
		}
	}
	if p.ArmMaxRetries < 0 {
		return fmt.Errorf("chaos: ArmMaxRetries must be >= 0, got %d", p.ArmMaxRetries)
	}
	if p.PreemptGapLen < 0 {
		return fmt.Errorf("chaos: PreemptGapLen must be >= 0, got %d", p.PreemptGapLen)
	}
	if err := p.Sched.Validate(); err != nil {
		return err
	}
	return p.Device.Validate()
}

// At returns the canonical fault mix at the given intensity in [0, 1]:
// every fault class ramps linearly from zero, so a sweep over intensities
// traces one accuracy-vs-noise curve through a representative fault blend.
// At(0) is the zero plan.
func At(intensity float64) Plan {
	if intensity <= 0 {
		return Plan{}
	}
	if intensity > 1 {
		intensity = 1
	}
	return Plan{
		DropRate:       0.20 * intensity,
		DupRate:        0.05 * intensity,
		JitterFrac:     0.25 * intensity,
		SaturateFrac:   0.10 * intensity,
		ArmFailRate:    0.40 * intensity,
		PreemptGapRate: 0.03 * intensity,
		PreemptGapLen:  3,
		ClockSkewFrac:  0.04 * intensity,
		TruncateFrac:   0.15 * intensity,
	}
}

// Stats is the injector's per-cause fault accounting. Every perturbation the
// injector applies is counted here, so a consumer can reconcile what it
// received against what the clean run would have delivered.
type Stats struct {
	// Sample-stream faults, in application order.
	Truncated      int // samples discarded from the tail
	PreemptionGaps int // gaps opened
	GapSamplesLost int // samples lost inside preemption gaps
	Dropped        int // individually dropped samples
	Duplicated     int // samples delivered twice
	Jittered       int // samples with at least one jittered counter
	Saturated      int // samples with at least one clipped counter
	// ClockSkew is the applied skew fraction (0 when no skew configured).
	ClockSkew float64

	// Channel-arming faults.
	ArmAttempts int // arming attempts, including retries
	ArmRetries  int // failed attempts that were retried
	ArmFailures int // channels abandoned after exhausting retries
}

// Injector applies one Plan with one private RNG stream. It is not safe for
// concurrent use; each co-run owns its own injector.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	stats Stats
}

// NewInjector validates the plan and seeds the injector. fallbackSeed is
// used when the plan does not pin its own seed, keyed so the fault stream
// never aliases the engine's RNG stream for the same co-run seed.
func NewInjector(plan Plan, fallbackSeed int64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	seed := plan.Seed
	if seed == 0 {
		seed = fallbackSeed ^ 0x5eed_c4a0_5bad_cafe
	}
	if plan.ArmMaxRetries == 0 {
		plan.ArmMaxRetries = 4
	}
	if plan.PreemptGapLen == 0 {
		plan.PreemptGapLen = 3
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}, nil
}

// Stats returns the accounting so far.
func (in *Injector) Stats() Stats { return in.stats }

// Plan returns the validated, default-filled plan.
func (in *Injector) Plan() Plan { return in.plan }

// ArmChannel simulates arming one spy channel. It draws one attempt, then up
// to maxRetries retries, and reports how many retries were consumed and
// whether the channel finally armed. mandatory channels retry harder (the spy
// cannot run without its probe) but still give up eventually so a hostile
// plan cannot hang the run.
func (in *Injector) ArmChannel(mandatory bool) (retries int, ok bool) {
	if in.plan.ArmFailRate <= 0 {
		in.stats.ArmAttempts++
		return 0, true
	}
	budget := in.plan.ArmMaxRetries
	if mandatory {
		const mandatoryRetryCap = 64
		budget = mandatoryRetryCap
	}
	for attempt := 0; ; attempt++ {
		in.stats.ArmAttempts++
		if in.rng.Float64() >= in.plan.ArmFailRate {
			return retries, true
		}
		if attempt >= budget {
			in.stats.ArmFailures++
			return retries, false
		}
		retries++
		in.stats.ArmRetries++
	}
}

// BackoffDelay converts a retry count into the capped-exponential host-side
// delay the spy spent re-arming: base, 2·base, 4·base, ... summed and capped
// at 8·base per step. The delayed channel launches its first kernel late, so
// heavy arming trouble shows up in the data as missing early windows.
func BackoffDelay(retries int, base gpu.Nanos) gpu.Nanos {
	if retries <= 0 || base <= 0 {
		return 0
	}
	var total gpu.Nanos
	step := base
	for i := 0; i < retries; i++ {
		total += step
		if step < 8*base {
			step *= 2
		}
	}
	return total
}

// Apply perturbs a CUPTI sample stream in place of the clean delivery,
// returning the faulted stream. Faults apply in a fixed order — truncation,
// preemption gaps, individual drops, duplication, counter jitter, counter
// saturation, clock skew — and every perturbation increments Stats. The
// input slice is not modified.
func (in *Injector) Apply(samples []cupti.Sample) []cupti.Sample {
	out := make([]cupti.Sample, len(samples))
	copy(out, samples)

	// Truncation: the tail of the trace never made it to disk.
	if in.plan.TruncateFrac > 0 {
		keep := int(float64(len(out)) * (1 - in.plan.TruncateFrac))
		if keep < 0 {
			keep = 0
		}
		in.stats.Truncated += len(out) - keep
		out = out[:keep]
	}

	// Preemption gaps: runs of consecutive windows lost while the spy's
	// host thread was switched out.
	if in.plan.PreemptGapRate > 0 {
		kept := out[:0]
		skip := 0
		for _, s := range out {
			if skip > 0 {
				skip--
				in.stats.GapSamplesLost++
				continue
			}
			if in.rng.Float64() < in.plan.PreemptGapRate {
				in.stats.PreemptionGaps++
				in.stats.GapSamplesLost++
				skip = in.plan.PreemptGapLen - 1
				continue
			}
			kept = append(kept, s)
		}
		out = kept
	}

	// Individual sample drops.
	if in.plan.DropRate > 0 {
		kept := out[:0]
		for _, s := range out {
			if in.rng.Float64() < in.plan.DropRate {
				in.stats.Dropped++
				continue
			}
			kept = append(kept, s)
		}
		out = kept
	}

	// Duplication: stale buffer reads re-deliver the previous window.
	if in.plan.DupRate > 0 {
		dup := make([]cupti.Sample, 0, len(out))
		for _, s := range out {
			dup = append(dup, s)
			if in.rng.Float64() < in.plan.DupRate {
				in.stats.Duplicated++
				dup = append(dup, s)
			}
		}
		out = dup
	}

	// Bounded multiplicative counter jitter.
	if in.plan.JitterFrac > 0 {
		for i := range out {
			touched := false
			for e := range out[i].Values {
				f := 1 + in.plan.JitterFrac*(2*in.rng.Float64()-1)
				if out[i].Values[e] != 0 {
					out[i].Values[e] *= f
					touched = true
				}
			}
			if touched {
				in.stats.Jittered++
			}
		}
	}

	// Saturation clipping at a fraction of the observed per-event maximum.
	if in.plan.SaturateFrac > 0 && len(out) > 0 {
		var caps [cupti.NumEvents]float64
		for _, s := range out {
			for e, v := range s.Values {
				if v > caps[e] {
					caps[e] = v
				}
			}
		}
		for e := range caps {
			caps[e] *= 1 - in.plan.SaturateFrac
		}
		for i := range out {
			clipped := false
			for e, v := range out[i].Values {
				if caps[e] > 0 && v > caps[e] {
					out[i].Values[e] = caps[e]
					clipped = true
				}
			}
			if clipped {
				in.stats.Saturated++
			}
		}
	}

	// Clock skew: the spy's sample clock drifts against the victim's
	// timeline clock, stretching timestamps away from the trace start.
	if in.plan.ClockSkewFrac > 0 && len(out) > 0 {
		in.stats.ClockSkew = in.plan.ClockSkewFrac
		origin := out[0].Start
		scale := 1 + in.plan.ClockSkewFrac
		for i := range out {
			out[i].Start = origin + gpu.Nanos(float64(out[i].Start-origin)*scale)
			out[i].End = origin + gpu.Nanos(float64(out[i].End-origin)*scale)
		}
	}

	return out
}
