package chaos

import (
	"reflect"
	"testing"

	"leakydnn/internal/cupti"
	"leakydnn/internal/gpu"
)

func synthSamples(n int) []cupti.Sample {
	out := make([]cupti.Sample, n)
	period := gpu.Nanos(1000)
	for i := range out {
		out[i].Start = gpu.Nanos(i) * period
		out[i].End = out[i].Start + period
		for e := range out[i].Values {
			out[i].Values[e] = float64(100 + i*7 + e)
		}
	}
	return out
}

func TestZeroPlanIsZero(t *testing.T) {
	if !(Plan{}).IsZero() {
		t.Fatal("zero plan not IsZero")
	}
	if At(0).IsZero() != true {
		t.Fatal("At(0) must be the zero plan")
	}
	if At(0.5).IsZero() {
		t.Fatal("At(0.5) must inject")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{ArmFailRate: 0.99},
		{ArmMaxRetries: -1},
		{PreemptGapLen: -2},
		{TruncateFrac: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) accepted", i, p)
		}
	}
	for _, x := range []float64{0, 0.25, 0.5, 1} {
		if err := At(x).Validate(); err != nil {
			t.Errorf("At(%v) invalid: %v", x, err)
		}
	}
}

// The injector must be deterministic: same plan, same seed, same input —
// byte-identical output and identical stats.
func TestInjectorDeterministic(t *testing.T) {
	run := func() ([]cupti.Sample, Stats) {
		in, err := NewInjector(At(0.7), 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			in.ArmChannel(i == 0)
		}
		out := in.Apply(synthSamples(400))
		return out, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("faulted streams differ between identical runs")
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
}

// Accounting identity: delivered + dropped-for-any-cause - duplicated must
// equal the clean count.
func TestApplyAccounting(t *testing.T) {
	const n = 1000
	in, err := NewInjector(Plan{
		DropRate:       0.2,
		DupRate:        0.1,
		PreemptGapRate: 0.02,
		PreemptGapLen:  4,
		TruncateFrac:   0.1,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	out := in.Apply(synthSamples(n))
	st := in.Stats()
	lost := st.Truncated + st.GapSamplesLost + st.Dropped
	if got := len(out) - st.Duplicated + lost; got != n {
		t.Fatalf("accounting broken: delivered=%d dup=%d lost=%d, reconstructs %d of %d",
			len(out), st.Duplicated, lost, got, n)
	}
	if st.PreemptionGaps == 0 || st.Dropped == 0 || st.Truncated == 0 {
		t.Fatalf("expected every configured fault class to fire: %+v", st)
	}
}

// The caller's sample slice must never be mutated.
func TestApplyDoesNotMutateInput(t *testing.T) {
	orig := synthSamples(50)
	ref := make([]cupti.Sample, len(orig))
	copy(ref, orig)
	in, err := NewInjector(At(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	in.Apply(orig)
	if !reflect.DeepEqual(orig, ref) {
		t.Fatal("Apply mutated its input")
	}
}

func TestJitterIsBounded(t *testing.T) {
	in, err := NewInjector(Plan{JitterFrac: 0.3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	clean := synthSamples(200)
	out := in.Apply(clean)
	if len(out) != len(clean) {
		t.Fatalf("jitter-only plan changed sample count: %d vs %d", len(out), len(clean))
	}
	for i := range out {
		for e := range out[i].Values {
			lo := clean[i].Values[e] * 0.7
			hi := clean[i].Values[e] * 1.3
			if v := out[i].Values[e]; v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("sample %d event %d jittered out of bounds: %v not in [%v, %v]", i, e, v, lo, hi)
			}
		}
	}
}

func TestSaturationClips(t *testing.T) {
	in, err := NewInjector(Plan{SaturateFrac: 0.5}, 11)
	if err != nil {
		t.Fatal(err)
	}
	clean := synthSamples(100)
	out := in.Apply(clean)
	var maxClean, maxOut float64
	for i := range clean {
		if v := clean[i].Values[0]; v > maxClean {
			maxClean = v
		}
		if v := out[i].Values[0]; v > maxOut {
			maxOut = v
		}
	}
	want := maxClean * 0.5
	if maxOut > want+1e-9 {
		t.Fatalf("saturation cap not enforced: max %v, cap %v", maxOut, want)
	}
	if in.Stats().Saturated == 0 {
		t.Fatal("no samples counted as saturated")
	}
}

func TestClockSkewPreservesOrderAndOrigin(t *testing.T) {
	in, err := NewInjector(Plan{ClockSkewFrac: 0.1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	clean := synthSamples(50)
	out := in.Apply(clean)
	if out[0].Start != clean[0].Start {
		t.Fatalf("skew moved the trace origin: %v vs %v", out[0].Start, clean[0].Start)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Start < out[i-1].Start {
			t.Fatalf("skew reordered samples at %d", i)
		}
	}
	last := len(out) - 1
	if out[last].End <= clean[last].End {
		t.Fatal("positive skew must stretch late timestamps")
	}
}

// Mandatory channels retry far past the optional budget; optional channels
// give up after ArmMaxRetries and are counted as failures.
func TestArmChannelBudgets(t *testing.T) {
	in, err := NewInjector(Plan{ArmFailRate: 0.9, ArmMaxRetries: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var optFail, optOK int
	for i := 0; i < 200; i++ {
		if retries, ok := in.ArmChannel(false); ok {
			optOK++
			if retries > 2 {
				t.Fatalf("optional channel used %d retries, budget 2", retries)
			}
		} else {
			optFail++
		}
	}
	if optFail == 0 || optOK == 0 {
		t.Fatalf("expected a mix of failures and successes at rate 0.9: ok=%d fail=%d", optOK, optFail)
	}
	st := in.Stats()
	if st.ArmFailures != optFail {
		t.Fatalf("ArmFailures=%d, observed %d", st.ArmFailures, optFail)
	}
	var mandatoryFails int
	for i := 0; i < 50; i++ {
		if _, ok := in.ArmChannel(true); !ok {
			mandatoryFails++
		}
	}
	// 0.9^65 ≈ 1e-3: mandatory arming should essentially always succeed.
	if mandatoryFails > 2 {
		t.Fatalf("mandatory arming failed %d/50 times despite 64-retry budget", mandatoryFails)
	}
}

func TestBackoffDelayCapped(t *testing.T) {
	base := gpu.Nanos(100)
	if d := BackoffDelay(0, base); d != 0 {
		t.Fatalf("no retries must mean no delay, got %v", d)
	}
	if d := BackoffDelay(1, base); d != 100 {
		t.Fatalf("one retry = base, got %v", d)
	}
	// 100+200+400+800+800+800: the per-step delay caps at 8*base.
	if d := BackoffDelay(6, base); d != 3100 {
		t.Fatalf("capped exponential sum wrong: got %v, want 3100", d)
	}
}

func TestAtRampMonotone(t *testing.T) {
	prev := At(0)
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		p := At(x)
		if p.DropRate < prev.DropRate || p.JitterFrac < prev.JitterFrac ||
			p.TruncateFrac < prev.TruncateFrac || p.ArmFailRate < prev.ArmFailRate {
			t.Fatalf("At(%v) not monotone vs previous intensity", x)
		}
		prev = p
	}
}
