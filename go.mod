module leakydnn

go 1.22
