// Command mosconsim runs the complete MoSConS attack end to end: profile the
// adversary's models, train every inference model, co-run the spy against a
// chosen victim's training, and print the recovered structure with its
// accuracy against ground truth.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"leakydnn/internal/attack"
	"leakydnn/internal/chaos"
	"leakydnn/internal/dnn"
	"leakydnn/internal/eval"
	"leakydnn/internal/fleet"
	"leakydnn/internal/journal"
	"leakydnn/internal/lstm"
	"leakydnn/internal/profiling"
	"leakydnn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosconsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "tiny", "experiment scale: tiny, mid, paper")
		victimIdx = flag.Int("victim", -1, "tested-model index to attack (-1 = all)")
		seed      = flag.Int64("seed", 0, "simulation seed (0 = the scale's default)")
		verbose   = flag.Bool("v", false, "print per-sample letters")
		saveFile  = flag.String("save", "", "save the trained model set to this file")
		loadFile  = flag.String("load", "", "load a previously saved model set instead of training")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0),
			"trace-collection and training worker-pool size (results are identical for any value; 1 runs serially)")
		batch = flag.Int("batch", 0,
			"LSTM minibatch size: sequences per optimizer step (0 = 1, the per-sequence schedule)")
		precision = flag.String("precision", "fp64",
			"LSTM training arithmetic: fp64 (bit-reproducible historical trajectories) or fp32 (faster, separately deterministic)")
		chaosIntensity = flag.Float64("chaos", 0,
			"measurement-fault intensity in [0,1]: applies the canonical chaos.At blend to the victim co-runs (0 = clean)")
		chaosDrop     = flag.Float64("chaos-drop", 0, "override: per-sample CUPTI drop rate")
		chaosJitter   = flag.Float64("chaos-jitter", 0, "override: counter jitter fraction")
		chaosTruncate = flag.Float64("chaos-truncate", 0, "override: trailing trace fraction discarded")
		chaosArmFail  = flag.Float64("chaos-armfail", 0, "override: spy channel arming failure rate")
		chaosSeed     = flag.Int64("chaos-seed", 0, "fault-stream seed (0 = derive from -seed)")

		schedIntensity = flag.Float64("sched", 0,
			"scheduler-fault intensity in [0,1]: applies the canonical chaos.SchedAt mix (victim stalls, driver resets, tenant churn) to the victim co-runs")
		schedStallRate = flag.Float64("sched-stall-rate", 0, "override: per-iteration victim input-pipeline stall probability")
		schedStallFrac = flag.Float64("sched-stall-frac", 0, "override: stall length as a fraction of one iteration")
		schedResets    = flag.Int("sched-resets", 0, "override: driver resets of the spy context per run")
		schedJoins     = flag.Int("sched-joins", 0, "override: background tenants joining mid-run")
		schedLeaves    = flag.Int("sched-leaves", 0, "override: initially attached tenants leaving mid-run")
		schedSeed      = flag.Int64("sched-seed", 0, "scheduler-fault-stream seed (0 = derive from -seed)")

		saveTraces = flag.String("save-traces", "", "stream the victim traces to this file after collection")
		loadTraces = flag.String("load-traces", "", "load victim traces from this file instead of re-collecting (chaos/sched flags are ignored)")

		fleetN = flag.Int("fleet", 0,
			"run a fleet of N independently seeded devices (heterogeneous classes and tenancy mixes; each device's victim is attacked with its class group's shared model set — see -fleet-per-device-models) instead of the single-device pipeline")
		fleetBudget = flag.Int("fleet-budget", 0,
			"with -fleet: total slow-down channels shared across all devices (0 = unlimited)")
		fleetChaos = flag.Float64("fleet-chaos", 0,
			"with -fleet: device-fault intensity in [0,1] (canonical chaos.FleetAt mix: device crashes, spy kills, arming-session losses on first attempts)")
		fleetRetries = flag.Int("fleet-retries", 2,
			"with -fleet: bounded per-device retries on crash/timeout before quarantine (each retry draws a fresh keyed seed stream)")
		fleetWatchdog = flag.Duration("fleet-watchdog", 0,
			"with -fleet: per-device attempt deadline; an attempt past it is abandoned and retried (0 = none)")
		journalPath = flag.String("journal", "",
			"with -fleet: journal each device's result to this file (crash-safe, fsync'd); requires -resume if the file already holds records")
		resume = flag.Bool("resume", false,
			"with -fleet: replay completed devices from -journal instead of re-running them")
		perDeviceModels = flag.Bool("fleet-per-device-models", false,
			"with -fleet: train a separate model set per device instead of sharing one per (class, tenancy-mix) group")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "mosconsim:", perr)
		}
	}()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	sc.Attack.Batch = *batch
	switch *precision {
	case "fp64":
		sc.Attack.Precision = lstm.PrecisionFP64
	case "fp32":
		sc.Attack.Precision = lstm.PrecisionFP32
	default:
		return fmt.Errorf("unknown -precision %q (want fp64 or fp32)", *precision)
	}

	// Faults hit only the victim co-runs: the adversary profiles and trains
	// on their own clean hardware, so sc.Chaos stays zero during the
	// workbench build and the tested traces are re-collected under the plan.
	plan := chaos.At(*chaosIntensity)
	if *chaosDrop > 0 {
		plan.DropRate = *chaosDrop
	}
	if *chaosJitter > 0 {
		plan.JitterFrac = *chaosJitter
	}
	if *chaosTruncate > 0 {
		plan.TruncateFrac = *chaosTruncate
	}
	if *chaosArmFail > 0 {
		plan.ArmFailRate = *chaosArmFail
	}
	plan.Sched = chaos.SchedAt(*schedIntensity)
	if *schedStallRate > 0 {
		plan.Sched.StallRate = *schedStallRate
	}
	if *schedStallFrac > 0 {
		plan.Sched.StallFrac = *schedStallFrac
	}
	if *schedResets > 0 {
		plan.Sched.Resets = *schedResets
	}
	if *schedJoins > 0 {
		plan.Sched.TenantJoins = *schedJoins
	}
	if *schedLeaves > 0 {
		plan.Sched.TenantLeaves = *schedLeaves
	}
	if !plan.Sched.IsZero() {
		plan.Sched.Seed = *schedSeed
	}
	if !plan.IsZero() {
		plan.Seed = *chaosSeed
		if err := plan.Validate(); err != nil {
			return err
		}
	}

	if *fleetN > 0 {
		fmt.Printf("== MoSConS fleet: %d devices (%s scale) ==\n", *fleetN, sc.Name)
		cfg := fleet.Config{
			Base:            sc,
			Devices:         *fleetN,
			SpyBudget:       *fleetBudget,
			FleetChaos:      chaos.FleetAt(*fleetChaos),
			Retries:         *fleetRetries,
			Watchdog:        *fleetWatchdog,
			PerDeviceModels: *perDeviceModels,
		}
		if *journalPath != "" {
			j, err := journal.Open(*journalPath)
			if err != nil {
				return err
			}
			defer j.Close()
			if n := len(j.Records()); n > 0 && !*resume {
				return fmt.Errorf("journal %s already holds %d records; pass -resume to replay them or choose a fresh path", *journalPath, n)
			}
			if st := j.Stats(); st.Truncated {
				fmt.Fprintf(os.Stderr, "journal: torn tail truncated (%d bytes lost to the crash)\n", st.TornBytes)
			}
			cfg.Journal = j
		} else if *resume {
			return fmt.Errorf("-resume requires -journal")
		}
		res, err := fleet.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Print(fleet.RenderRollup(res.Devices))
		// One stable fingerprint line per device: the crash-recovery soak
		// diffs these between an interrupted-and-resumed campaign and its
		// uninterrupted golden.
		for i, d := range res.Devices {
			fp := d.Fingerprint
			if fp == "" {
				fp = "quarantined:" + d.FailCause
			}
			fmt.Printf("fingerprint %03d %-24s %s\n", i, d.Spec.Name, fp)
		}
		fmt.Printf("aggregate scheduler grants: %d\n", res.TotalSchedSlices)
		return nil
	}

	fmt.Printf("== MoSConS end-to-end (%s scale) ==\n", sc.Name)

	var models *attack.Models
	var tested []*trace.Trace
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			return err
		}
		models, err = attack.LoadModels(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded trained models from %s\n", *loadFile)
	} else {
		fmt.Println("collecting profiling traces and training inference models ...")
		w, err := eval.NewWorkbench(sc)
		if err != nil {
			return err
		}
		t := w.Timings
		fmt.Fprintf(os.Stderr, "workbench ready: collect %.2fs, train %.2fs (overlapped), wall %.2fs\n",
			t.Collect.Seconds(), t.Train.Seconds(), t.Wall.Seconds())
		models = w.Models
		tested = w.Tested
	}
	if *loadTraces != "" {
		f, err := os.Open(*loadTraces)
		if err != nil {
			return err
		}
		tested, err = trace.ReadTraces(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d victim traces from %s\n", len(tested), *loadTraces)
	} else if tested == nil || !plan.IsZero() {
		scVictim := sc
		scVictim.Chaos = plan
		if !plan.IsZero() {
			fmt.Printf("re-collecting victim traces under fault plan (measurement %.2f, scheduler %.2f blend)\n",
				*chaosIntensity, *schedIntensity)
		}
		tested, err = scVictim.CollectTraces(scVictim.Tested, eval.StreamTested)
		if err != nil {
			return err
		}
	}
	if *saveTraces != "" {
		f, err := os.Create(*saveTraces)
		if err != nil {
			return err
		}
		if err := trace.WriteTraces(f, tested); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("victim traces streamed to %s\n", *saveTraces)
	}
	fmt.Printf("training report: %v\n\n", models.Report)

	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return err
		}
		if err := models.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trained models saved to %s\n\n", *saveFile)
	}

	targets := tested
	if *victimIdx >= 0 {
		if *victimIdx >= len(tested) {
			return fmt.Errorf("victim index %d out of range [0,%d)", *victimIdx, len(tested))
		}
		targets = tested[*victimIdx : *victimIdx+1]
	}
	for _, tr := range targets {
		if err := attackOne(models, tr, *verbose); err != nil {
			return err
		}
	}
	return nil
}

func attackOne(models *attack.Models, tr *trace.Trace, verbose bool) error {
	fmt.Printf("---- victim %s (%d samples) ----\n", tr.Model.Name, len(tr.Samples))
	if tr.Health != nil {
		fmt.Printf("trace health: %s\n", tr.Health.Summary())
	}
	rec, err := models.ExtractTrace(tr)
	if err != nil {
		// A trace can be too damaged to attack; report and move on rather
		// than abort the remaining victims.
		fmt.Printf("extraction failed: %v\n\n", err)
		return nil
	}
	if verbose {
		fmt.Printf("letters: %s\n", rec.Letters)
	}
	if rec.Coverage.StreamSegments > 1 {
		fmt.Printf("stream: %d independent segments (%d re-anchor markers)\n",
			rec.Coverage.StreamSegments, len(tr.Reanchors))
	}
	fmt.Printf("iterations: %d detected, %d clean", len(rec.Split.All), len(rec.Split.Valid))
	if n := rec.Coverage.QuarantinedShort + rec.Coverage.QuarantinedLong; n > 0 {
		fmt.Printf(" (%d quarantined: %d short, %d long)",
			n, rec.Coverage.QuarantinedShort, rec.Coverage.QuarantinedLong)
	}
	if rec.Coverage.UsedFallback {
		fmt.Printf(" [fallback: voting over unfiltered segments]")
	}
	fmt.Println()
	fmt.Printf("op sequence: %s\n", rec.OpSeq)
	fmt.Printf("fingerprint: %s\n", rec.Fingerprint())
	fmt.Printf("optimizer:   %v (true %v)\n", rec.Optimizer, tr.Model.Optimizer)
	fmt.Println("layers:")
	for i, l := range rec.Layers {
		switch l.Kind {
		case dnn.LayerConv:
			fmt.Printf("  %2d: Conv  filter=%dx%d count=%d stride=%d act=%v\n",
				i, l.FilterSize, l.FilterSize, l.NumFilters, l.Stride, l.Act)
		case dnn.LayerFC:
			fmt.Printf("  %2d: FC    neurons=%d act=%v\n", i, l.Neurons, l.Act)
		case dnn.LayerMaxPool:
			fmt.Printf("  %2d: MaxPool\n", i)
		}
	}
	layerAcc, hpAcc := attack.LayerAccuracy(rec.Layers, tr.Model)
	truth := attack.LetterTruth(tr.Labels(), rec.Base)
	_, letterAcc := attack.LetterAccuracy(rec.Letters, truth)
	fmt.Printf("accuracy: ops %.1f%%, layers %.1f%%, hyper-parameters %.1f%%\n\n",
		letterAcc*100, layerAcc*100, hpAcc*100)
	return nil
}

func scaleByName(name string) (eval.Scale, error) {
	switch name {
	case "tiny":
		return eval.Tiny(), nil
	case "mid":
		return eval.Mid(), nil
	case "paper":
		return eval.Paper(), nil
	}
	return eval.Scale{}, fmt.Errorf("unknown scale %q (tiny, mid, paper)", name)
}
