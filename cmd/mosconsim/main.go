// Command mosconsim runs the complete MoSConS attack end to end: profile the
// adversary's models, train every inference model, co-run the spy against a
// chosen victim's training, and print the recovered structure with its
// accuracy against ground truth.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"leakydnn/internal/attack"
	"leakydnn/internal/dnn"
	"leakydnn/internal/eval"
	"leakydnn/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosconsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "tiny", "experiment scale: tiny, mid, paper")
		victimIdx = flag.Int("victim", -1, "tested-model index to attack (-1 = all)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		verbose   = flag.Bool("v", false, "print per-sample letters")
		saveFile  = flag.String("save", "", "save the trained model set to this file")
		loadFile  = flag.String("load", "", "load a previously saved model set instead of training")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0),
			"trace-collection and training worker-pool size (results are identical for any value; 1 runs serially)")
		batch = flag.Int("batch", 0,
			"LSTM minibatch size: sequences per optimizer step (0 = 1, the per-sequence schedule)")
	)
	flag.Parse()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	sc.Workers = *workers
	sc.Attack.Batch = *batch

	fmt.Printf("== MoSConS end-to-end (%s scale) ==\n", sc.Name)

	var models *attack.Models
	var tested []*trace.Trace
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			return err
		}
		models, err = attack.LoadModels(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded trained models from %s\n", *loadFile)
		tested, err = sc.CollectTraces(sc.Tested, sc.Seed+900)
		if err != nil {
			return err
		}
	} else {
		fmt.Println("collecting profiling traces and training inference models ...")
		w, err := eval.NewWorkbench(sc)
		if err != nil {
			return err
		}
		models = w.Models
		tested = w.Tested
	}
	fmt.Printf("training report: %v\n\n", models.Report)

	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return err
		}
		if err := models.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trained models saved to %s\n\n", *saveFile)
	}

	targets := tested
	if *victimIdx >= 0 {
		if *victimIdx >= len(tested) {
			return fmt.Errorf("victim index %d out of range [0,%d)", *victimIdx, len(tested))
		}
		targets = tested[*victimIdx : *victimIdx+1]
	}
	for _, tr := range targets {
		if err := attackOne(models, tr, *verbose); err != nil {
			return err
		}
	}
	return nil
}

func attackOne(models *attack.Models, tr *trace.Trace, verbose bool) error {
	fmt.Printf("---- victim %s (%d samples) ----\n", tr.Model.Name, len(tr.Samples))
	rec, err := models.Extract(tr.Samples)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("letters: %s\n", rec.Letters)
	}
	fmt.Printf("iterations: %d detected, %d clean\n", len(rec.Split.All), len(rec.Split.Valid))
	fmt.Printf("op sequence: %s\n", rec.OpSeq)
	fmt.Printf("optimizer:   %v (true %v)\n", rec.Optimizer, tr.Model.Optimizer)
	fmt.Println("layers:")
	for i, l := range rec.Layers {
		switch l.Kind {
		case dnn.LayerConv:
			fmt.Printf("  %2d: Conv  filter=%dx%d count=%d stride=%d act=%v\n",
				i, l.FilterSize, l.FilterSize, l.NumFilters, l.Stride, l.Act)
		case dnn.LayerFC:
			fmt.Printf("  %2d: FC    neurons=%d act=%v\n", i, l.Neurons, l.Act)
		case dnn.LayerMaxPool:
			fmt.Printf("  %2d: MaxPool\n", i)
		}
	}
	layerAcc, hpAcc := attack.LayerAccuracy(rec.Layers, tr.Model)
	truth := attack.LetterTruth(tr.Labels(), rec.Base)
	_, letterAcc := attack.LetterAccuracy(rec.Letters, truth)
	fmt.Printf("accuracy: ops %.1f%%, layers %.1f%%, hyper-parameters %.1f%%\n\n",
		letterAcc*100, layerAcc*100, hpAcc*100)
	return nil
}

func scaleByName(name string) (eval.Scale, error) {
	switch name {
	case "tiny":
		return eval.Tiny(), nil
	case "mid":
		return eval.Mid(), nil
	case "paper":
		return eval.Paper(), nil
	}
	return eval.Scale{}, fmt.Errorf("unknown scale %q (tiny, mid, paper)", name)
}
