// Command gpuprof runs a victim model alone on the simulated GPU with the
// TensorFlow-style timeline profiler enabled, printing per-op statistics and
// optionally writing the Chrome-tracing JSON TensorFlow's timeline module
// would produce (load it at chrome://tracing).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"leakydnn/internal/dnn"
	"leakydnn/internal/gpu"
	"leakydnn/internal/tfsim"
	"leakydnn/internal/zoo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpuprof:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName  = flag.String("model", "vgg16", "victim model: vgg16, zfnet, alexnet, cust-vgg19, cust-mlp, tiny-cnn, tiny-vgg, tiny-mlp")
		iterations = flag.Int("iterations", 2, "training iterations to profile")
		side       = flag.Int("side", 0, "override input side (0 keeps the model's default)")
		batch      = flag.Int("batch", 0, "override batch size (0 keeps the model's default)")
		traceOut   = flag.String("trace", "", "write Chrome-tracing JSON to this file")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	model, err := lookupModel(*modelName)
	if err != nil {
		return err
	}
	if *side > 0 || *batch > 0 {
		s, b := model.Input.H, model.Batch
		if *side > 0 {
			s = *side
		}
		if *batch > 0 {
			b = *batch
		}
		model = zoo.Scale(model, s, b)
	}

	dev := gpu.DefaultDeviceConfig()
	sess, err := tfsim.NewSession(model, tfsim.DefaultConfig(*iterations), dev)
	if err != nil {
		return err
	}
	eng, err := gpu.NewEngine(dev, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	tl := &tfsim.Timeline{}
	eng.OnKernelEnd = tl.Observe
	if !eng.AddChannel(1, sess.Source()) {
		return fmt.Errorf("scheduler rejected the victim channel")
	}
	horizon := (sess.IterationDuration() + 10*gpu.Millisecond) * gpu.Nanos(*iterations) * 4
	eng.Run(horizon)

	fmt.Printf("model %s: %d layers, %d ops/iteration, iteration %v\n",
		model.Name, len(model.Layers), sess.OpsPerIteration(), sess.IterationDuration())
	fmt.Printf("op signature: %s\n\n", dnn.OpSignature(sess.Ops()))

	type opStat struct {
		name  string
		total gpu.Nanos
		count int
	}
	stats := make(map[string]*opStat)
	for _, e := range tl.Events() {
		st := stats[e.Name]
		if st == nil {
			st = &opStat{name: e.Name}
			stats[e.Name] = st
		}
		st.total += e.End - e.Start
		st.count++
	}
	rows := make([]*opStat, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, st)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	fmt.Printf("%-24s %10s %8s %14s\n", "op", "count", "share", "total")
	var grand gpu.Nanos
	for _, st := range rows {
		grand += st.total
	}
	for _, st := range rows {
		fmt.Printf("%-24s %10d %7.1f%% %14v\n", st.name, st.count,
			100*float64(st.total)/float64(grand), st.total)
	}

	if *traceOut != "" {
		raw, err := tl.MarshalChromeTrace()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nChrome trace written to %s (open chrome://tracing)\n", *traceOut)
	}
	return nil
}

func lookupModel(name string) (dnn.Model, error) {
	all := append(zoo.ProfiledModels(), zoo.TestedModels()...)
	all = append(all, zoo.TinyMLP(), zoo.TinyCNN(), zoo.TinyVGG(), zoo.TinyResNet(), zoo.TinyRNN())
	all = append(all, zoo.TinyProfiledModels()...)
	all = append(all, zoo.TinyTestedModels()...)
	for _, m := range all {
		if m.Name == name {
			return m, nil
		}
	}
	var names []string
	for _, m := range all {
		names = append(names, m.Name)
	}
	return dnn.Model{}, fmt.Errorf("unknown model %q (available: %v)", name, names)
}
