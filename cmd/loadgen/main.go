// Command loadgen drives a running mosconsd with a seeded mix of good,
// truncated, slow, and client-cancelled trace uploads, and reports what the
// daemon sustained: traces/sec, latency percentiles over successful requests,
// and the shed rate. It is the harness behind EXPERIMENTS.md's
// sustained-throughput table — run it at 2x the sustainable rate and the
// daemon must shed with typed 429s while p99 stays bounded.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"leakydnn/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type outcome int

const (
	outOK outcome = iota
	outShed
	outMalformed
	outCancelledByUs
	outServerCancel
	outOtherError
	numOutcomes
)

var outcomeName = [numOutcomes]string{
	"ok", "shed (429)", "malformed (400)", "client-aborted", "server-cancelled", "other-error",
}

func run() error {
	var (
		httpAddr  = flag.String("http", "", "daemon TCP address (e.g. 127.0.0.1:7070)")
		unixPath  = flag.String("unix", "", "daemon unix socket path")
		scaleName = flag.String("scale", "tiny", "scale whose tested traces are uploaded: tiny, mid, paper")
		seed      = flag.Int64("seed", 1, "mix and jitter seed; equal seeds replay the same request schedule")
		workers   = flag.Int("concurrency", 8, "concurrent uploaders")
		duration  = flag.Duration("duration", 10*time.Second, "how long to sustain the load")
		timeout   = flag.Duration("timeout", time.Minute, "client-side request timeout")
		pGood     = flag.Float64("p-good", 0.7, "fraction of well-formed uploads")
		pTrunc    = flag.Float64("p-truncated", 0.1, "fraction of uploads cut mid-stream")
		pSlow     = flag.Float64("p-slow", 0.1, "fraction of uploads dripped slowly (well-formed, slow body)")
		pCancel   = flag.Float64("p-cancel", 0.1, "fraction of uploads the client abandons mid-flight")
	)
	flag.Parse()
	if *httpAddr == "" && *unixPath == "" {
		return fmt.Errorf("no target: set -http or -unix")
	}
	if *httpAddr != "" && *unixPath != "" {
		return fmt.Errorf("set only one of -http and -unix")
	}
	total := *pGood + *pTrunc + *pSlow + *pCancel
	if total <= 0 {
		return fmt.Errorf("upload mix sums to %v, want > 0", total)
	}

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: collecting %d victim traces at %s scale ...\n",
		len(sc.Tested), sc.Name)
	tested, err := sc.CollectTraces(sc.Tested, eval.StreamTested)
	if err != nil {
		return err
	}
	payloads := make([][]byte, len(tested))
	for i, tr := range tested {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return err
		}
		payloads[i] = buf.Bytes()
	}

	client, base := newClient(*httpAddr, *unixPath)
	client.Timeout = 0 // per-request contexts carry the deadline

	type sample struct {
		outcome outcome
		latency time.Duration
		traces  int
	}
	var (
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				body := payloads[rng.Intn(len(payloads))]
				kind := pick(rng, []float64{*pGood, *pTrunc, *pSlow, *pCancel})
				record(uploadOnce(client, base, body, kind, rng, *timeout))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var counts [numOutcomes]int
	var okLatencies []time.Duration
	tracesDone := 0
	for _, s := range samples {
		counts[s.outcome]++
		if s.outcome == outOK {
			okLatencies = append(okLatencies, s.latency)
			tracesDone += s.traces
		}
	}
	fmt.Printf("loadgen: %d requests in %.1fs (%.1f req/s, %.1f traces/s sustained)\n",
		len(samples), wall.Seconds(),
		float64(len(samples))/wall.Seconds(), float64(tracesDone)/wall.Seconds())
	for o := outcome(0); o < numOutcomes; o++ {
		if counts[o] > 0 {
			fmt.Printf("  %-18s %6d\n", outcomeName[o]+":", counts[o])
		}
	}
	if len(okLatencies) > 0 {
		sort.Slice(okLatencies, func(i, j int) bool { return okLatencies[i] < okLatencies[j] })
		fmt.Printf("latency (ok): p50 %s  p99 %s  max %s\n",
			percentile(okLatencies, 0.50), percentile(okLatencies, 0.99),
			okLatencies[len(okLatencies)-1])
	}
	fmt.Printf("shed rate: %.1f%%\n", 100*float64(counts[outShed])/float64(max(1, len(samples))))
	return nil
}

// pick draws an index weighted by w.
func pick(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	x := rng.Float64() * total
	for i, v := range w {
		if x < v {
			return i
		}
		x -= v
	}
	return len(w) - 1
}

const (
	kindGood = iota
	kindTruncated
	kindSlow
	kindCancel
)

// slowReader drips its payload with a delay per chunk, simulating a client on
// a bad link; the daemon's request deadline bounds how long it tolerates us.
type slowReader struct {
	data  []byte
	chunk int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(s.delay)
	n := min(min(s.chunk, len(p)), len(s.data))
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}

func uploadOnce(client *http.Client, base string, body []byte, kind int,
	rng *rand.Rand, timeout time.Duration) (s struct {
	outcome outcome
	latency time.Duration
	traces  int
}) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	var payload io.Reader
	switch kind {
	case kindTruncated:
		cut := 1 + rng.Intn(len(body)-1)
		payload = bytes.NewReader(body[:cut])
	case kindSlow:
		payload = &slowReader{data: body, chunk: 4096, delay: 2 * time.Millisecond}
	case kindCancel:
		payload = bytes.NewReader(body)
		abort := time.Duration(rng.Intn(20)) * time.Millisecond
		go func() {
			time.Sleep(abort)
			cancel()
		}()
	default:
		payload = bytes.NewReader(body)
	}

	begin := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/extract", payload)
	if err != nil {
		s.outcome = outOtherError
		return s
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	s.latency = time.Since(begin)
	if err != nil {
		if kind == kindCancel || ctx.Err() != nil {
			s.outcome = outCancelledByUs
		} else {
			s.outcome = outOtherError
		}
		return s
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var out struct {
			Traces []json.RawMessage `json:"traces"`
		}
		if json.NewDecoder(resp.Body).Decode(&out) == nil {
			s.traces = len(out.Traces)
		}
		s.outcome = outOK
	case http.StatusTooManyRequests:
		s.outcome = outShed
	case http.StatusBadRequest:
		s.outcome = outMalformed
	case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		s.outcome = outServerCancel
	default:
		s.outcome = outOtherError
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	return s
}

func newClient(httpAddr, unixPath string) (*http.Client, string) {
	if unixPath != "" {
		return &http.Client{Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", unixPath)
			},
		}}, "http://mosconsd"
	}
	return &http.Client{}, "http://" + httpAddr
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Round(time.Millisecond)
}

func scaleByName(name string) (eval.Scale, error) {
	switch name {
	case "tiny":
		return eval.Tiny(), nil
	case "mid":
		return eval.Mid(), nil
	case "paper":
		return eval.Paper(), nil
	}
	return eval.Scale{}, fmt.Errorf("unknown scale %q (tiny, mid, paper)", name)
}
