// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report: one entry per benchmark with its iteration count and every
// metric the line carries (ns/op, B/op, allocs/op, and custom metrics such as
// slices/sec). CI commits the result (BENCH_N.json) so successive PRs leave a
// comparable performance trajectory behind.
//
// With -sweep it additionally runs the fleet scaling curve in-process — one
// collect-only fleet per worker count — and appends per-point wall time,
// throughput, parallel speedup/efficiency and GC deltas to the report, so the
// CI artifact carries the scaling curve alongside the benchmark lines.
//
// Usage:
//
//	go test -run=NONE -bench ... -benchmem | go run ./cmd/benchjson -out BENCH_5.json
//	go run ./cmd/benchjson -sweep -out sweep.json < /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"leakydnn/internal/eval"
	"leakydnn/internal/fleet"
)

// Report is the top-level JSON document.
type Report struct {
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Sweep holds the -sweep scaling curve, absent otherwise.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Sweep is the fleet scaling curve: the same collect-only fleet run once per
// worker count, with speedup and parallel efficiency relative to the first
// (serial) point. Per-device traces are byte-identical across the points (the
// fleet package's invariance tests pin that), so every point does identical
// simulation work and the curve isolates the coordination overhead.
type Sweep struct {
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Devices    int          `json:"devices"`
	Points     []SweepPoint `json:"points"`
}

// SweepPoint is one worker count's measurement.
type SweepPoint struct {
	Workers      int     `json:"workers"`
	WallNs       float64 `json:"wall_ns"`
	SlicesPerSec float64 `json:"slices_per_sec"`
	// Speedup is wall(workers=first point)/wall(this point); Efficiency is
	// Speedup/Workers — 1.0 means perfectly linear scaling.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// GC deltas across this point's run.
	GCCycles    uint32 `json:"gc_cycles"`
	GCPauseNs   uint64 `json:"gc_pause_ns"`
	AllocBytes  uint64 `json:"alloc_bytes"`
	HeapObjects uint64 `json:"heap_allocs"`
}

// runSweep executes the scaling curve: one collect-only fleet per worker
// count, serially, GC'd between points so each point's GC delta is its own.
func runSweep(workerCounts []int, devices int) (*Sweep, error) {
	sw := &Sweep{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), Devices: devices}
	for _, w := range workerCounts {
		sc := eval.Tiny()
		sc.Workers = w
		cfg := fleet.Config{Base: sc, Devices: devices, CollectOnly: true}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := fleet.Run(cfg)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("sweep workers=%d: %w", w, err)
		}
		runtime.ReadMemStats(&after)
		p := SweepPoint{
			Workers:     w,
			WallNs:      float64(wall.Nanoseconds()),
			GCCycles:    after.NumGC - before.NumGC,
			GCPauseNs:   after.PauseTotalNs - before.PauseTotalNs,
			AllocBytes:  after.TotalAlloc - before.TotalAlloc,
			HeapObjects: after.Mallocs - before.Mallocs,
		}
		if secs := wall.Seconds(); secs > 0 {
			p.SlicesPerSec = float64(res.TotalSchedSlices) / secs
		}
		if len(sw.Points) > 0 && p.WallNs > 0 {
			p.Speedup = sw.Points[0].WallNs / p.WallNs
			p.Efficiency = p.Speedup / float64(w)
		} else {
			p.Speedup = 1
			p.Efficiency = 1 / float64(w)
		}
		sw.Points = append(sw.Points, p)
		fmt.Fprintf(os.Stderr, "sweep workers=%d wall=%.2fs slices/sec=%.0f speedup=%.2f efficiency=%.2f gc=%d\n",
			w, wall.Seconds(), p.SlicesPerSec, p.Speedup, p.Efficiency, p.GCCycles)
	}
	return sw, nil
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchLine matches "BenchmarkName-8   10   123.4 ns/op   ..." — the name
// (with an optional -GOMAXPROCS suffix), the iteration count, and the rest of
// the line holding whitespace-separated value/unit metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	sweep := flag.Bool("sweep", false,
		"run the fleet scaling curve in-process (one collect-only fleet per -sweep-workers count) and append it to the report")
	sweepWorkers := flag.String("sweep-workers", "1,2,4,8", "comma-separated worker counts for -sweep")
	sweepDevices := flag.Int("sweep-devices", 8, "fleet size for -sweep")
	flag.Parse()

	report := Report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	if *sweep {
		var counts []int
		for _, f := range strings.Split(*sweepWorkers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchjson: bad -sweep-workers entry %q\n", f)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		sw, err := runSweep(counts, *sweepDevices)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		report.Sweep = sw
	}
	if len(report.Benchmarks) == 0 && report.Sweep == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
