// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report: one entry per benchmark with its iteration count and every
// metric the line carries (ns/op, B/op, allocs/op, and custom metrics such as
// slices/sec). CI commits the result (BENCH_N.json) so successive PRs leave a
// comparable performance trajectory behind.
//
// Usage:
//
//	go test -run=NONE -bench ... -benchmem | go run ./cmd/benchjson -out BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Report is the top-level JSON document.
type Report struct {
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchLine matches "BenchmarkName-8   10   123.4 ns/op   ..." — the name
// (with an optional -GOMAXPROCS suffix), the iteration count, and the rest of
// the line holding whitespace-separated value/unit metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	report := Report{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
