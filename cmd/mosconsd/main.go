// Command mosconsd runs the MoSConS extraction service: a daemon that accepts
// victim trace uploads over HTTP and/or a unix socket, extracts model secrets
// from them with a warm trained model set, and degrades gracefully under
// overload (bounded queue, typed 429 shedding, per-request deadlines,
// drain-on-SIGTERM). Results are byte-identical to the offline
// `mosconsim -load-traces` pipeline; the response carries the recovery
// fingerprint that pins it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"leakydnn/internal/eval"
	"leakydnn/internal/journal"
	"leakydnn/internal/profiling"
	"leakydnn/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mosconsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		httpAddr  = flag.String("http", "", "TCP listen address (e.g. 127.0.0.1:7070); empty disables")
		unixPath  = flag.String("unix", "", "unix socket path; empty disables")
		scaleName = flag.String("scale", "tiny", "experiment scale the daemon serves: tiny, mid, paper")
		seed      = flag.Int64("seed", 0, "simulation seed (0 = the scale's default)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0),
			"worker-pool size for model warm-up training")
		inflight = flag.Int("inflight", runtime.GOMAXPROCS(0),
			"maximum concurrently executing extractions")
		queue = flag.Int("queue", 2*runtime.GOMAXPROCS(0),
			"admission queue depth beyond the in-flight slots; requests past inflight+queue are shed with 429")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request extraction deadline")
		drain   = flag.Duration("drain", 30*time.Second,
			"SIGTERM drain budget: in-flight requests past it are hard-cancelled")
		cacheDir     = flag.String("cache", "", "model-set cache directory; empty keeps trained models in memory only")
		cacheEntries = flag.Int("cache-entries", 0,
			"maximum warm model sets resident at once; LRU sets beyond it are evicted from memory and disk (0 = unlimited)")
		cacheBytes = flag.Int64("cache-bytes", 0,
			"maximum serialized bytes across warm model sets; LRU eviction keeps the total under it (0 = unlimited)")
		qdir   = flag.String("quarantine", "", "directory capturing malformed uploads for postmortem; empty discards them")
		qFiles = flag.Int("quarantine-files", 0,
			"maximum quarantined captures kept; oldest rotate out (0 = 32, negative = unlimited)")
		qBytes = flag.Int64("quarantine-bytes", 0,
			"maximum total quarantined bytes kept; oldest rotate out (0 = 64 MiB, negative = unlimited)")
		journalPath = flag.String("journal", "",
			"result journal: record every served extraction so a restarted daemon (including after SIGKILL) replays known uploads instead of re-extracting")
		maxChunk  = flag.Int64("max-chunk", 0, "per-chunk wire guard in bytes handed to the trace reader (0 = default)")
		warm      = flag.Bool("warm", true, "train/load the model set before accepting traffic")
		pprofAddr = flag.String("pprof", "",
			"opt-in diagnostics: serve /debug/pprof on this TCP address (own listener, never the service mux); empty disables")
	)
	flag.Parse()

	if *httpAddr == "" && *unixPath == "" {
		return fmt.Errorf("no listener: set -http and/or -unix")
	}
	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers

	cache := serve.NewModelCache(*cacheDir)
	cache.SetLimits(*cacheEntries, *cacheBytes)
	cfg := serve.Config{
		Scale:              sc,
		MaxInFlight:        *inflight,
		QueueDepth:         *queue,
		RequestTimeout:     *timeout,
		DrainTimeout:       *drain,
		MaxChunkBytes:      *maxChunk,
		QuarantineDir:      *qdir,
		QuarantineMaxFiles: *qFiles,
		QuarantineMaxBytes: *qBytes,
		Cache:              cache,
	}
	if *journalPath != "" {
		j, err := journal.Open(*journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		if st := j.Stats(); st.Records > 0 || st.Truncated {
			fmt.Fprintf(os.Stderr, "mosconsd: journal holds %d replayable results (torn tail: %v)\n",
				st.Records, st.Truncated)
		}
		cfg.Journal = j
	}
	s := serve.New(cfg)

	if *warm {
		fmt.Fprintf(os.Stderr, "mosconsd: warming %s model set ...\n", serve.CacheKey(sc))
		warmStart := time.Now()
		if err := s.Warm(context.Background()); err != nil {
			return fmt.Errorf("model warm-up: %w", err)
		}
		fmt.Fprintf(os.Stderr, "mosconsd: models ready in %.1fs\n", time.Since(warmStart).Seconds())
	}

	serveErr := make(chan error, 3)
	if *pprofAddr != "" {
		if err := profiling.ServeHTTP(*pprofAddr, serveErr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mosconsd: pprof diagnostics on http://%s/debug/pprof/\n", *pprofAddr)
	}
	var listeners []net.Listener
	listen := func(network, addr string) error {
		l, err := net.Listen(network, addr)
		if err != nil {
			return err
		}
		listeners = append(listeners, l)
		fmt.Fprintf(os.Stderr, "mosconsd: listening on %s %s\n", network, addr)
		go func() { serveErr <- s.Serve(l) }()
		return nil
	}
	if *unixPath != "" {
		// A stale socket from a crashed predecessor blocks the bind; remove
		// it only if nothing answers there.
		if _, err := os.Stat(*unixPath); err == nil {
			if conn, derr := net.DialTimeout("unix", *unixPath, time.Second); derr == nil {
				conn.Close()
				return fmt.Errorf("socket %s already served by a live daemon", *unixPath)
			}
			os.Remove(*unixPath)
		}
		if err := listen("unix", *unixPath); err != nil {
			return err
		}
	}
	if *httpAddr != "" {
		if err := listen("tcp", *httpAddr); err != nil {
			return err
		}
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-sigCtx.Done():
		fmt.Fprintf(os.Stderr, "mosconsd: signal received, draining (budget %s) ...\n", *drain)
		err := s.Drain()
		m := s.Metrics()
		fmt.Fprintf(os.Stderr, "mosconsd: drained: %d completed, %d shed, %d cancelled\n",
			m.Completed, m.Shed, m.Cancelled)
		for range listeners {
			<-serveErr // each Serve returns once shutdown closes its listener
		}
		return err
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	}
}

func scaleByName(name string) (eval.Scale, error) {
	switch name {
	case "tiny":
		return eval.Tiny(), nil
	case "mid":
		return eval.Mid(), nil
	case "paper":
		return eval.Paper(), nil
	}
	return eval.Scale{}, fmt.Errorf("unknown scale %q (tiny, mid, paper)", name)
}
