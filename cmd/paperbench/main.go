// Command paperbench regenerates the paper's tables and figures from the
// simulator: every experiment of the evaluation section plus the ablations
// DESIGN.md calls out. Select an experiment with -exp and a platform scale
// with -scale; "all" runs the complete battery and prints each artifact in
// the paper's layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"leakydnn/internal/eval"
	"leakydnn/internal/fleet"
	"leakydnn/internal/lstm"
	"leakydnn/internal/profiling"
)

var experiments = []string{
	"table1", "table2", "fig2", "fig3", "table6", "gapsweep",
	"table7", "table8", "table9", "slowdown", "sweep", "defense",
	"baseline", "shortcut", "rnn", "multitenant", "ablations",
	"robustness", "fleet",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName   = flag.String("exp", "all", "experiment: all, "+strings.Join(experiments, ", "))
		scaleName = flag.String("scale", "tiny", "platform scale: tiny, mid, paper")
		seed      = flag.Int64("seed", 0, "simulation seed (0 = the scale's default)")
		samples   = flag.Int("samples", 60, "samples per pilot-table cell")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0),
			"evaluation and training worker-pool size (results are identical for any value; 1 runs serially)")
		batch = flag.Int("batch", 0,
			"LSTM minibatch size: sequences per optimizer step (0 = 1, the per-sequence schedule)")
		precision = flag.String("precision", "fp64",
			"LSTM training arithmetic: fp64 (bit-reproducible historical trajectories) or fp32 (faster, separately deterministic)")
		fleetDevices = flag.Int("fleet-devices", 6,
			"fleet experiment: largest device count (the grid reports prefixes of one run)")
		fleetBudget = flag.Int("fleet-budget", 0,
			"fleet experiment: total slow-down channels shared across devices (0 = unlimited)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", perr)
		}
	}()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	sc.Attack.Batch = *batch
	switch *precision {
	case "fp64":
		sc.Attack.Precision = lstm.PrecisionFP64
	case "fp32":
		sc.Attack.Precision = lstm.PrecisionFP32
	default:
		return fmt.Errorf("unknown -precision %q (want fp64 or fp32)", *precision)
	}

	selected := experiments
	if *expName != "all" {
		selected = strings.Split(*expName, ",")
	}

	// The workbench (one training run) backs several experiments; build it
	// lazily only when one of them is requested.
	var w *eval.Workbench
	bench := func() (*eval.Workbench, error) {
		if w != nil {
			return w, nil
		}
		fmt.Println("[training MoSConS models — shared across experiments]")
		var err error
		w, err = eval.NewWorkbench(sc)
		if err == nil {
			// Collect and Train overlap in the pipelined construction, so
			// their sum exceeds the wall-clock whenever the overlap paid off.
			// Timings go to stderr: stdout must stay byte-identical across
			// runs and worker counts (the determinism contract users diff).
			t := w.Timings
			fmt.Fprintf(os.Stderr, "[workbench phases: collect %.2fs | train %.2fs (overlapped) | wall %.2fs]\n",
				t.Collect.Seconds(), t.Train.Seconds(), t.Wall.Seconds())
		}
		return w, err
	}

	for _, name := range selected {
		fmt.Printf("\n===== %s (%s scale) =====\n", name, sc.Name)
		expStart := time.Now()
		switch strings.TrimSpace(name) {
		case "table1":
			res, err := eval.Table1(sc, *samples)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "table2":
			res, err := eval.Table2(sc, *samples)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "fig2":
			res, err := eval.FigSampling(sc, true)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "fig3":
			res, err := eval.FigSampling(sc, false)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "table6":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.Table6()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "gapsweep":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.GapSweep([]int{8, 16, 32}, []int{32})
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "table7":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.Table7()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "table8":
			res, err := eval.Table8(sc, nil)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "table9":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.Table9()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "slowdown":
			res, err := eval.SlowdownImpact(sc)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "sweep":
			points, err := eval.SlowdownSweep(sc, []int{1, 2, 4, 8, 16}, []int{8, 32}, []int{256})
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderSweep(points))
		case "baseline":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.CompareBaseline()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "shortcut":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.StudyShortcuts()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "rnn":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.StudyRNN()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "multitenant":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.MultiTenant()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "defense":
			wb, err := bench()
			if err != nil {
				return err
			}
			res, err := wb.EvaluateDefenses(2000, 1.0)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "fleet":
			counts := []int{*fleetDevices}
			if *fleetDevices >= 2 {
				counts = []int{*fleetDevices / 2, *fleetDevices}
			}
			g, err := fleet.AccuracyGrid(fleet.Config{
				Base:      sc,
				SpyBudget: *fleetBudget,
			}, counts)
			if err != nil {
				return err
			}
			fmt.Print(g.Render())
		case "robustness":
			wb, err := bench()
			if err != nil {
				return err
			}
			// 2-D grid: measurement-fault intensity x scheduler-fault
			// intensity. The scheduler axis is coarser — each non-zero step
			// injects at least one driver reset, which dominates the cost.
			res, err := wb.Robustness(
				[]float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
				[]float64{0, 0.5, 1.0},
			)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		case "ablations":
			wb, err := bench()
			if err != nil {
				return err
			}
			voting, err := wb.AblationVoting()
			if err != nil {
				return err
			}
			fmt.Print(voting.Render())
			syntax, err := wb.AblationSyntax()
			if err != nil {
				return err
			}
			fmt.Print(syntax.Render())
			sd, err := eval.AblationSlowdown(sc)
			if err != nil {
				return err
			}
			fmt.Print(sd.Render())
			wl, err := eval.AblationWeightedLoss(sc)
			if err != nil {
				return err
			}
			fmt.Print(wl.Render())
			cg, err := eval.AblationCounterGroups(sc)
			if err != nil {
				return err
			}
			fmt.Print(cg.Render())
		default:
			return fmt.Errorf("unknown experiment %q (available: all, %s)",
				name, strings.Join(experiments, ", "))
		}
		fmt.Fprintf(os.Stderr, "[%s: evaluate %.2fs]\n", strings.TrimSpace(name), time.Since(expStart).Seconds())
	}
	return nil
}

func scaleByName(name string) (eval.Scale, error) {
	switch name {
	case "tiny":
		return eval.Tiny(), nil
	case "mid":
		return eval.Mid(), nil
	case "paper":
		return eval.Paper(), nil
	}
	return eval.Scale{}, fmt.Errorf("unknown scale %q (tiny, mid, paper)", name)
}
