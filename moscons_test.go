package leakydnn

import (
	"errors"
	"testing"
)

// The facade must expose a coherent, usable public surface: model
// construction, compilation, trace collection, the driver gate and the
// experiment scales, without reaching into internal packages.
func TestFacadeModelLifecycle(t *testing.T) {
	model := Model{
		Name:  "facade-cnn",
		Input: Shape{H: 32, W: 32, C: 3},
		Batch: 8,
		Layers: []Layer{
			Conv(3, 16, 1, ActReLU),
			MaxPool(),
			FC(32, ActSigmoid),
		},
		Optimizer: OptimizerAdam,
	}
	ops, err := Compile(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no ops compiled")
	}

	sc := TinyScale()
	tr, err := CollectTrace(model, sc.RunConfig(5, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("no samples collected through the facade")
	}

	quantized, err := QuantizeCounters(tr.Samples, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(quantized) != len(tr.Samples) {
		t.Fatal("quantization changed sample count")
	}
}

func TestFacadeDriverGate(t *testing.T) {
	drv, err := NewDriver(PatchedDriverVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.CheckAccess(); !errors.Is(err, ErrCUPTIRestricted) {
		t.Fatalf("patched driver access = %v, want restricted", err)
	}
	if err := drv.Downgrade(UnpatchedDriverVersion); err != nil {
		t.Fatal(err)
	}
	if err := drv.CheckAccess(); err != nil {
		t.Fatalf("downgraded driver still restricted: %v", err)
	}
}

func TestFacadeScalesAndZoo(t *testing.T) {
	for _, sc := range []Scale{TinyScale(), MidScale(), PaperScale()} {
		if len(sc.Profiled) == 0 || len(sc.Tested) == 0 {
			t.Fatalf("scale %s lacks models", sc.Name)
		}
	}
	if got := VGG16(); len(got.Layers) != 21 {
		t.Fatalf("VGG16 has %d layers", len(got.Layers))
	}
	scaled := ScaleModel(ZFNet(), 64, 8)
	if scaled.Input.H != 64 || scaled.Batch != 8 {
		t.Fatalf("ScaleModel result %v/%d", scaled.Input, scaled.Batch)
	}
	if len(ProfiledModels()) != 3 || len(TestedModels()) != 3 {
		t.Fatal("zoo sets incomplete")
	}
}

func TestFacadeSyntheticDataset(t *testing.T) {
	data, err := SyntheticDataset(32, 16, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 32 {
		t.Fatalf("dataset length %d", data.Len())
	}
	batch, err := data.Batch(0, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Images) != 8 || batch.Shape.H != 32 {
		t.Fatalf("batch %d images shape %v", len(batch.Images), batch.Shape)
	}
}
