//go:build race

package leakydnn

// raceEnabled reports whether this build runs under the race detector, whose
// shadow-memory bookkeeping inflates allocation counts; the allocation
// regression tests skip themselves there.
const raceEnabled = true
