// Package leakydnn is the public API of the MoSConS reproduction — the
// DSN 2020 paper "Leaky DNN: Stealing Deep-learning Model Secret with GPU
// Context-switching Side-channel" rebuilt as a self-contained Go library.
//
// The package re-exports the stable surface of the internal subsystems:
//
//   - the simulated GPU platform (time-sliced and MPS schedulers, the
//     L2/texture eviction side channel, CUPTI counters);
//   - the TensorFlow-like victim stack (models, layers, per-iteration op
//     compilation, timeline profiling);
//   - the spy program (Conv200 probe, eight-kernel slow-down attack,
//     fixed-period and per-kernel CUPTI sampling);
//   - the MoSConS extraction pipeline (Mgap, Mlong/Vlong, Mop/Vop, Mhp,
//     collapsing, layer derivation, DNN-syntax correction);
//   - the full evaluation harness regenerating every table and figure of
//     the paper, plus the §VI defenses.
//
// Quickstart:
//
//	sc := leakydnn.TinyScale()
//	w, _ := leakydnn.NewWorkbench(sc)
//	rec, _ := w.Models.Extract(w.Tested[0].Samples)
//	fmt.Println(rec.OpSeq)
package leakydnn

import (
	"leakydnn/internal/attack"
	"leakydnn/internal/baseline"
	"leakydnn/internal/chaos"
	"leakydnn/internal/cupti"
	"leakydnn/internal/defense"
	"leakydnn/internal/dnn"
	"leakydnn/internal/eval"
	"leakydnn/internal/gpu"
	"leakydnn/internal/spy"
	"leakydnn/internal/tfsim"
	"leakydnn/internal/trace"
	"leakydnn/internal/workload"
	"leakydnn/internal/zoo"
)

// Victim model definitions (the secrets the attack recovers).
type (
	// Model is a CNN/MLP definition: layers, hyper-parameters, optimizer.
	Model = dnn.Model
	// Layer is one layer with its secret hyper-parameters.
	Layer = dnn.Layer
	// Shape is a feature-map shape.
	Shape = dnn.Shape
	// Activation selects a layer non-linearity.
	Activation = dnn.Activation
	// OptimizerKind selects the training optimizer.
	OptimizerKind = dnn.OptimizerKind
	// Op is one compiled operation of a training iteration.
	Op = dnn.Op
)

// Layer constructors and enum values.
var (
	Conv    = dnn.Conv
	FC      = dnn.FC
	MaxPool = dnn.MaxPool
	RNN     = dnn.RNN
	Compile = dnn.Compile
)

// Activation and optimizer constants.
const (
	ActReLU    = dnn.ActReLU
	ActTanh    = dnn.ActTanh
	ActSigmoid = dnn.ActSigmoid

	OptimizerGD      = dnn.OptimizerGD
	OptimizerAdagrad = dnn.OptimizerAdagrad
	OptimizerAdam    = dnn.OptimizerAdam
)

// Platform: the simulated GPU.
type (
	// DeviceConfig describes the simulated GPU (GTX 1080 Ti-like defaults).
	DeviceConfig = gpu.DeviceConfig
	// Nanos is simulated time in nanoseconds.
	Nanos = gpu.Nanos
)

// DefaultDevice returns the GTX 1080 Ti-like platform configuration.
var DefaultDevice = gpu.DefaultDeviceConfig

// Victim stack.
type (
	// SessionConfig configures a victim training run.
	SessionConfig = tfsim.Config
	// Timeline is the victim-side op profiler (chrome-tracing exportable).
	Timeline = tfsim.Timeline
)

// Spy program.
type (
	// SpyConfig deploys the adversary's CUDA program.
	SpyConfig = spy.Config
	// ProbeKind selects a probe kernel (Table I).
	ProbeKind = spy.Kind
)

// Probe kernels of Table I.
const (
	ProbeVectorAdd = spy.VectorAdd
	ProbeVectorMul = spy.VectorMul
	ProbeMatMul    = spy.MatMul
	ProbeConv100   = spy.Conv100
	ProbeConv200   = spy.Conv200
)

// Tracing: co-running spy and victim.
type (
	// TraceConfig configures one co-run.
	TraceConfig = trace.RunConfig
	// Trace is the aligned outcome: spy samples plus victim ground truth.
	Trace = trace.Trace
	// Sample is one CUPTI reading.
	Sample = cupti.Sample
	// TraceHealth is a co-run's degradation report: per-cause fault
	// accounting and iteration coverage.
	TraceHealth = trace.Health
)

// Fault injection: deterministic measurement-path chaos (dropped/duplicated
// samples, counter jitter, arming failures, preemption gaps, clock skew,
// truncation) and scheduler-side chaos (victim stalls, driver resets, tenant
// churn). Set TraceConfig.Chaos or Scale.Chaos (ChaosPlan.Sched for the
// scheduling layer); the zero plan keeps every run byte-identical to a clean
// collection.
type (
	// ChaosPlan configures the fault injector.
	ChaosPlan = chaos.Plan
	// ChaosStats is the injector's per-cause fault accounting.
	ChaosStats = chaos.Stats
	// SchedChaosPlan perturbs the scheduling layer the side channel rides on.
	SchedChaosPlan = chaos.SchedPlan
	// SchedChaosStats is the scheduler-fault accounting of one co-run.
	SchedChaosStats = chaos.SchedStats
)

// ChaosAt returns the canonical measurement-fault blend at an intensity in
// [0, 1]; SchedChaosAt the canonical scheduler-fault mix.
var (
	ChaosAt      = chaos.At
	SchedChaosAt = chaos.SchedAt
)

// CollectTrace co-runs the spy against a victim model under the time-sliced
// scheduler and returns the aligned trace.
var CollectTrace = trace.Collect

// Streaming trace serialization: WriteTraces streams a collection as
// length-prefixed gob chunks (traces written back to back form one file),
// ReadTraces restores it; ReadTrace decodes a single trace. Trace.WriteTo
// serializes one trace and implements io.WriterTo.
var (
	WriteTraces = trace.WriteTraces
	ReadTraces  = trace.ReadTraces
	ReadTrace   = trace.ReadTrace
)

// Attack pipeline.
type (
	// AttackConfig holds MoSConS's hyper-parameters.
	AttackConfig = attack.Config
	// AttackModels is the trained inference-model set.
	AttackModels = attack.Models
	// Recovery is an extraction's full output.
	Recovery = attack.Recovery
	// RecoveredLayer is one reconstructed layer.
	RecoveredLayer = attack.RecoveredLayer
)

// Attack construction and metrics.
var (
	// TrainAttack trains the full MoSConS model set on profiled traces.
	TrainAttack = attack.TrainModels
	// LoadAttackModels restores a model set written with AttackModels.Save.
	LoadAttackModels = attack.LoadModels
	// ApplyResNetHeuristic places shortcuts with the §IV-C domain-knowledge
	// rule (the side channel cannot see them).
	ApplyResNetHeuristic = attack.ApplyResNetHeuristic
	// DefaultAttackConfig is the paper's configuration (LSTM-256 etc.).
	DefaultAttackConfig = attack.DefaultConfig
	// FastAttackConfig is a reduced configuration for quick runs.
	FastAttackConfig = attack.FastConfig
	// LayerAccuracy scores a recovery against the true model (Table IX).
	LayerAccuracy = attack.LayerAccuracy
	// LetterAccuracy scores per-sample op letters (Table VII).
	LetterAccuracy = attack.LetterAccuracy
)

// Evaluation harness.
type (
	// Scale fixes an experiment's platform/workload/attack sizes.
	Scale = eval.Scale
	// Workbench couples a trained attack with tested traces.
	Workbench = eval.Workbench
	// RobustnessResult is the accuracy-vs-fault-intensity sweep.
	RobustnessResult = eval.RobustnessResult
	// RobustnessRow aggregates one intensity step of the sweep.
	RobustnessRow = eval.RobustnessRow
)

// Experiment scales and runners.
var (
	TinyScale  = eval.Tiny
	MidScale   = eval.Mid
	PaperScale = eval.Paper

	NewWorkbench = eval.NewWorkbench

	Table1         = eval.Table1
	Table2         = eval.Table2
	FigSampling    = eval.FigSampling
	Table8         = eval.Table8
	SlowdownImpact = eval.SlowdownImpact
	SlowdownSweep  = eval.SlowdownSweep
)

// Model zoo (Tables V and IX).
var (
	ProfiledModels = zoo.ProfiledModels
	TestedModels   = zoo.TestedModels
	VGG16          = zoo.VGG16
	ZFNet          = zoo.ZFNet
	AlexNet        = zoo.AlexNet
	TinyResNet     = zoo.TinyResNet
	TinyRNN        = zoo.TinyRNN
	ScaleModel     = zoo.Scale
)

// Defenses (§VI).
var (
	QuantizeCounters = defense.QuantizeSamples
	NoiseCounters    = defense.NoiseSamples
	HardenScheduler  = defense.HardenScheduler
)

// Synthetic workload (the ImageNet stand-in).
type (
	// Dataset is a deterministic synthetic image dataset.
	Dataset = workload.Dataset
	// Image is one synthetic example.
	Image = workload.Image
)

// SyntheticDataset builds a deterministic image dataset.
var SyntheticDataset = workload.Synthetic

// Baseline: the prior-work MPS co-location attack (CCS'18).
type (
	// BaselineConfig runs the MPS-era attack.
	BaselineConfig = baseline.Config
	// BaselineObservation is its one-sample-per-iteration reading.
	BaselineObservation = baseline.Observation
)

// Baseline helpers.
var (
	CollectBaseline  = baseline.Collect
	TrainNeuronCount = baseline.TrainNeuronCount
)

// CUPTI access control (§II-D).
type Driver = cupti.Driver

// Driver helpers: the paper's driver-downgrade bypass.
var (
	NewDriver              = cupti.NewDriver
	ErrCUPTIRestricted     = cupti.ErrAccessRestricted
	PatchedDriverVersion   = cupti.PatchedDriverVersion
	UnpatchedDriverVersion = cupti.UnpatchedDriverVersion
)
