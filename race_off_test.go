//go:build !race

package leakydnn

const raceEnabled = false
