// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, as DESIGN.md's experiment index maps out),
// plus throughput benchmarks for the simulator and the attack pipeline.
// Custom metrics attach each artifact's headline numbers to the benchmark
// output, so `go test -bench=. -benchmem` doubles as a results report.
package leakydnn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"leakydnn/internal/attack"
	"leakydnn/internal/eval"
	"leakydnn/internal/fleet"
	"leakydnn/internal/gbdt"
	"leakydnn/internal/gpu"
	"leakydnn/internal/lstm"
	"leakydnn/internal/spy"
	"leakydnn/internal/trace"
)

// benchScale is the platform scale every artifact benchmark runs at. The
// tiny scale keeps the full battery under a few minutes; use
// `cmd/paperbench -scale mid|paper` for larger regenerations.
func benchScale() eval.Scale { return eval.Tiny() }

var (
	workbenchOnce sync.Once
	workbench     *eval.Workbench
	workbenchErr  error
)

// sharedWorkbench trains the MoSConS models once for all attack benchmarks.
func sharedWorkbench(b *testing.B) *eval.Workbench {
	b.Helper()
	workbenchOnce.Do(func() {
		workbench, workbenchErr = eval.NewWorkbench(benchScale())
	})
	if workbenchErr != nil {
		b.Fatal(workbenchErr)
	}
	return workbench
}

// BenchmarkTable1SpyKernels regenerates Table I (spy-kernel selection).
func BenchmarkTable1SpyKernels(b *testing.B) {
	sc := benchScale()
	var conv200Mean float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Table1(sc, 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Spy == spy.Conv200 {
				conv200Mean = row.Event1.Mean
			}
		}
	}
	b.ReportMetric(conv200Mean, "conv200-ev1-mean")
}

// BenchmarkTable2VictimOps regenerates Table II (victim-op pilot).
func BenchmarkTable2VictimOps(b *testing.B) {
	sc := benchScale()
	var nopOverBusy float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Table2(sc, 40)
		if err != nil {
			b.Fatal(err)
		}
		nop, _ := res.Row("NOP")
		matmul, _ := res.Row("MatMul")
		if matmul.Event2.Mean > 0 {
			nopOverBusy = nop.Event2.Mean / matmul.Event2.Mean
		}
	}
	b.ReportMetric(nopOverBusy, "nop/busy-ratio")
}

// BenchmarkFig2MPSSampling regenerates Figure 2 (MPS starves the spy).
func BenchmarkFig2MPSSampling(b *testing.B) {
	sc := benchScale()
	sc.Iterations = 4
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := eval.FigSampling(sc, true)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanPerIteration
	}
	b.ReportMetric(mean, "samples/iter")
}

// BenchmarkFig3TimeSlicedSampling regenerates Figure 3 (time-sliced yields
// many samples per iteration).
func BenchmarkFig3TimeSlicedSampling(b *testing.B) {
	sc := benchScale()
	sc.Iterations = 4
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := eval.FigSampling(sc, false)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanPerIteration
	}
	b.ReportMetric(mean, "samples/iter")
}

// BenchmarkTable6IterationSplit regenerates Table VI (Mgap accuracy).
func BenchmarkTable6IterationSplit(b *testing.B) {
	w := sharedWorkbench(b)
	var nop, busy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.Table6()
		if err != nil {
			b.Fatal(err)
		}
		nop, busy = 0, 0
		for _, row := range res.Rows {
			nop += row.NOPAcc
			busy += row.BusyAcc
		}
		nop /= float64(len(res.Rows))
		busy /= float64(len(res.Rows))
	}
	b.ReportMetric(nop*100, "nop-acc-%")
	b.ReportMetric(busy*100, "busy-acc-%")
}

// BenchmarkTable7OpInference regenerates Table VII (op inference, pre- and
// post-voting — the voting ablation's two arms).
func BenchmarkTable7OpInference(b *testing.B) {
	w := sharedWorkbench(b)
	var pre, vote float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.Table7()
		if err != nil {
			b.Fatal(err)
		}
		pre, vote = 0, 0
		for _, row := range res.Rows {
			pre += row.OverallPre
			vote += row.OverallVote
		}
		pre /= float64(len(res.Rows))
		vote /= float64(len(res.Rows))
	}
	b.ReportMetric(pre*100, "prevote-acc-%")
	b.ReportMetric(vote*100, "voted-acc-%")
}

// BenchmarkTable8HyperParams regenerates Table VIII for the two cheapest
// hyper-parameter kinds (the full five-kind sweep runs via cmd/paperbench).
func BenchmarkTable8HyperParams(b *testing.B) {
	sc := benchScale()
	sc.Iterations = 5
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Table8(sc, []attack.HPKind{attack.HPStride, attack.HPOptimizer})
		if err != nil {
			b.Fatal(err)
		}
		acc = 0
		for _, row := range res.Rows {
			acc += row.Accuracy
		}
		acc /= float64(len(res.Rows))
	}
	b.ReportMetric(acc*100, "hp-acc-%")
}

// BenchmarkTable9LayerSequence regenerates Table IX (end-to-end recovery).
func BenchmarkTable9LayerSequence(b *testing.B) {
	w := sharedWorkbench(b)
	var layers, hp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.Table9()
		if err != nil {
			b.Fatal(err)
		}
		layers, hp = 0, 0
		for _, row := range res.Rows {
			layers += row.LayerAcc
			hp += row.HPAcc
		}
		layers /= float64(len(res.Rows))
		hp /= float64(len(res.Rows))
	}
	b.ReportMetric(layers*100, "layer-acc-%")
	b.ReportMetric(hp*100, "hp-acc-%")
}

// BenchmarkSlowdownImpact regenerates §V-F (victim/spy slow-down ratios).
func BenchmarkSlowdownImpact(b *testing.B) {
	sc := benchScale()
	var victim, spySlow float64
	for i := 0; i < b.N; i++ {
		res, err := eval.SlowdownImpact(sc)
		if err != nil {
			b.Fatal(err)
		}
		victim = res.VictimSlowdownAttack
		spySlow = res.SpySlowdown
	}
	b.ReportMetric(victim, "victim-slowdown-x")
	b.ReportMetric(spySlow, "spy-slowdown-x")
}

// BenchmarkSlowdownSweep regenerates the §IV parameter search showing the
// slow-down upper bound.
func BenchmarkSlowdownSweep(b *testing.B) {
	sc := benchScale()
	sc.Iterations = 3
	var best float64
	for i := 0; i < b.N; i++ {
		points, err := eval.SlowdownSweep(sc, []int{1, 8}, []int{32}, []int{256})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.VictimSlowdown > best {
				best = p.VictimSlowdown
			}
		}
	}
	b.ReportMetric(best, "max-slowdown-x")
}

// BenchmarkGapSweep regenerates §V-B's batch/image-size robustness sweep.
func BenchmarkGapSweep(b *testing.B) {
	w := sharedWorkbench(b)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.GapSweep([]int{8, 16}, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		acc = 0
		for _, row := range res.Rows {
			acc += row.NOPAcc
		}
		acc /= float64(len(res.Rows))
	}
	b.ReportMetric(acc*100, "nop-acc-%")
}

// BenchmarkDefenses regenerates the §VI countermeasure comparison.
func BenchmarkDefenses(b *testing.B) {
	w := sharedWorkbench(b)
	var baseline, hardened float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.EvaluateDefenses(2000, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		baseline = res.Rows[0].LetterAccuracy
		hardened = res.Rows[len(res.Rows)-1].LetterAccuracy
	}
	b.ReportMetric(baseline*100, "undefended-acc-%")
	b.ReportMetric(hardened*100, "hardened-acc-%")
}

// BenchmarkAblationSyntax measures the smoothing/syntax-correction stages.
func BenchmarkAblationSyntax(b *testing.B) {
	w := sharedWorkbench(b)
	var raw, full float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.AblationSyntax()
		if err != nil {
			b.Fatal(err)
		}
		raw, full = 0, 0
		for _, row := range res.Rows {
			raw += row.RawLayerAcc
			full += row.FullLayerAcc
		}
		raw /= float64(len(res.Rows))
		full /= float64(len(res.Rows))
	}
	b.ReportMetric(raw*100, "raw-layer-acc-%")
	b.ReportMetric(full*100, "full-layer-acc-%")
}

// BenchmarkAblationSlowdown measures the sample-yield gain of the slow-down
// attack.
func BenchmarkAblationSlowdown(b *testing.B) {
	sc := benchScale()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := eval.AblationSlowdown(sc)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Gain
	}
	b.ReportMetric(gain, "sample-gain-x")
}

// BenchmarkAblationWeightedLoss compares Mlong's weighted vs uniform loss.
func BenchmarkAblationWeightedLoss(b *testing.B) {
	sc := benchScale()
	var weighted, uniform float64
	for i := 0; i < b.N; i++ {
		res, err := eval.AblationWeightedLoss(sc)
		if err != nil {
			b.Fatal(err)
		}
		weighted = res.WeightedAcc
		uniform = res.UniformAcc
	}
	b.ReportMetric(weighted*100, "weighted-acc-%")
	b.ReportMetric(uniform*100, "uniform-acc-%")
}

// BenchmarkEngineThroughput measures raw simulator speed: scheduler grants
// per second under a contended two-context workload. The slices/sec metric is
// the engine's headline throughput number — wall-clock spent per simulated
// scheduler grant.
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := gpu.DefaultDeviceConfig()
	totalSlices := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		eng, err := gpu.NewEngine(cfg, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		slices := 0
		eng.OnSlice = func(gpu.SliceRecord) { slices++ }
		victim := gpu.KernelProfile{Name: "v", Blocks: 64, ThreadsPerBlock: 256,
			FLOPs: 5e9, ReadBytes: 1 << 24, WriteBytes: 1 << 24, WorkingSetBytes: 1 << 20}
		eng.AddChannel(1, &gpu.RepeatSource{Kernel: victim})
		for j := 0; j < 8; j++ {
			eng.AddChannel(2, &gpu.RepeatSource{Kernel: victim})
		}
		eng.Run(2 * gpu.Second)
		if slices == 0 {
			b.Fatal("no slices simulated")
		}
		totalSlices += slices
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(totalSlices)/elapsed, "slices/sec")
	}
}

// BenchmarkTraceCollect measures a full co-run + alignment at tiny scale.
func BenchmarkTraceCollect(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Collect(sc.Tested[len(sc.Tested)-1], sc.RunConfig(int64(i), true))
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Samples) == 0 {
			b.Fatal("no samples")
		}
	}
}

// benchCollectWorkers regenerates the profiled trace set under a fixed
// worker-pool size; comparing the Workers1/Workers4 variants measures the
// deterministic fan-out's speedup (expect ~linear scaling on a multi-core
// runner, and identical traces at any setting).
func benchCollectWorkers(b *testing.B, workers int) {
	sc := benchScale()
	sc.Workers = workers
	for i := 0; i < b.N; i++ {
		traces, err := sc.CollectTraces(sc.Profiled, eval.StreamProfiled)
		if err != nil {
			b.Fatal(err)
		}
		if len(traces) != len(sc.Profiled) {
			b.Fatalf("collected %d traces, want %d", len(traces), len(sc.Profiled))
		}
	}
}

func BenchmarkCollectTracesWorkers1(b *testing.B) { benchCollectWorkers(b, 1) }
func BenchmarkCollectTracesWorkers4(b *testing.B) { benchCollectWorkers(b, 4) }

// benchFleetCollect runs a collect-only fleet — eight heterogeneous devices,
// one victim+spy engine each, all real work on one shared pool — under a
// fixed worker budget. The aggregate slices/sec metric is the fleet's
// headline simulator throughput; comparing the Workers1/Workers4 variants
// measures the device fan-out's speedup (expect ~linear scaling on a
// multi-core runner, and byte-identical per-device traces at any setting —
// the fleet package's golden-hash tests pin that).
func benchFleetCollect(b *testing.B, workers int) {
	sc := benchScale()
	sc.Workers = workers
	cfg := fleet.Config{Base: sc, Devices: 8, CollectOnly: true}
	totalSlices := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalSchedSlices == 0 {
			b.Fatal("fleet simulated no scheduler grants")
		}
		totalSlices += res.TotalSchedSlices
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(totalSlices)/elapsed, "slices/sec")
	}
}

func BenchmarkFleetCollectWorkers1(b *testing.B) { benchFleetCollect(b, 1) }
func BenchmarkFleetCollectWorkers4(b *testing.B) { benchFleetCollect(b, 4) }

// benchFleetFull runs the full extraction fleet — collection, training and
// extraction for eight devices spanning two classes and one mix, so the fleet
// holds exactly two (class, mix) model groups. The PerDevice/Shared pair
// measures the class-sharing dedup: per-device mode trains eight model sets,
// shared mode trains two and references the rest, and with training the
// dominant cost the wall-clock gap approaches devices/groups regardless of
// core count (the win is eliminated work, not parallelism).
func benchFleetFull(b *testing.B, perDevice bool) {
	cfg := fleet.Config{
		Base:            benchScale(),
		Devices:         8,
		Classes:         fleet.DefaultClasses()[:2],
		Mixes:           []fleet.TenancyMix{{Name: "solo", Tenants: 0}},
		PerDeviceModels: perDevice,
	}
	var trained, referenced int
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range res.Devices {
			if d.ExtractErr != "" {
				b.Fatalf("%s: extraction failed: %s", d.Spec.Name, d.ExtractErr)
			}
		}
		trained, referenced = res.ModelSetsTrained, res.ModelSetsReferenced
	}
	b.ReportMetric(float64(trained), "modelsets-trained")
	b.ReportMetric(float64(referenced), "modelsets-shared")
}

func BenchmarkFleetFullPerDevice(b *testing.B) { benchFleetFull(b, true) }
func BenchmarkFleetFullShared(b *testing.B)    { benchFleetFull(b, false) }

// benchWorkbench builds the full pipelined Workbench — profiled and tested
// collection on one shared pool, training overlapped with the tested set —
// under a fixed worker budget. Comparing the Workers1/Workers4 variants
// measures the pipeline overlap (expect gains on a multi-core runner, and
// byte-identical results at any setting).
func benchWorkbench(b *testing.B, workers int) {
	sc := benchScale()
	sc.Workers = workers
	for i := 0; i < b.N; i++ {
		w, err := eval.NewWorkbench(sc)
		if err != nil {
			b.Fatal(err)
		}
		if w.Models == nil || len(w.Tested) != len(sc.Tested) {
			b.Fatal("incomplete workbench")
		}
	}
}

func BenchmarkWorkbenchWorkers1(b *testing.B) { benchWorkbench(b, 1) }
func BenchmarkWorkbenchWorkers4(b *testing.B) { benchWorkbench(b, 4) }

// benchTrainModels runs the full MoSConS training under a fixed worker-pool
// size, with trace collection outside the timer. Comparing the
// Workers1/Workers4 variants measures the deterministic training fan-out's
// speedup (head-level concurrency plus minibatch worker pools; expect gains
// on a multi-core runner, and byte-identical models at any setting).
func benchTrainModels(b *testing.B, workers int) {
	sc := benchScale()
	sc.Workers = workers
	// Batch=8 with FP32 compute is the batched-GEMM trainer's intended
	// operating point: the batch is wide enough that the rank-B gradient
	// updates amortize a whole pass over the weight matrices (the
	// length-sorted slot prefix keeps padding free), and the float32 fast
	// path halves kernel memory traffic and swaps math.Exp/Tanh for the
	// cheaper Cephes polynomials. Both knobs are golden-pinned deterministic
	// paths (see internal/lstm/golden_test.go); Batch=2 FP64, the pre-GEMM
	// setting, left most of that on the table.
	sc.Attack.Batch = 8
	sc.Attack.Precision = lstm.PrecisionFP32
	profiled, err := sc.CollectTraces(sc.Profiled, eval.StreamProfiled)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sc.AttackConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		models, err := attack.TrainModels(profiled, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if models.Long == nil || models.Op == nil {
			b.Fatal("training produced incomplete model set")
		}
	}
}

func BenchmarkTrainModelsWorkers1(b *testing.B) { benchTrainModels(b, 1) }
func BenchmarkTrainModelsWorkers4(b *testing.B) { benchTrainModels(b, 4) }

// benchBPTT isolates raw LSTM BPTT throughput — one network, one epoch per
// iteration, no attack pipeline around it — at the op-classifier's scale.
// This is the kernel the GEMM overhaul targets, so it sits in CI's perf
// gate alongside the end-to-end training benchmarks.
func benchBPTT(b *testing.B, precision lstm.Precision) {
	const (
		inputDim = 8
		classes  = 10
		seqCount = 32
		seqLen   = 30
	)
	rng := rand.New(rand.NewSource(42))
	seqs := make([]lstm.Sequence, seqCount)
	for i := range seqs {
		in := make([][]float64, seqLen)
		labels := make([]int, seqLen)
		for t := range in {
			v := make([]float64, inputDim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			in[t] = v
			labels[t] = rng.Intn(classes)
		}
		seqs[i] = lstm.Sequence{Inputs: in, Labels: labels}
	}
	n, err := lstm.New(lstm.Config{
		InputDim: inputDim, Hidden: 40, Classes: classes, Seed: 7,
		Batch: 8, Workers: 1, Precision: precision,
	})
	if err != nil {
		b.Fatal(err)
	}
	tokens := int64(seqCount * seqLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Train(seqs, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tokens)*float64(b.N)/b.Elapsed().Seconds(), "timesteps/s")
}

func BenchmarkBPTTSingleThread(b *testing.B)     { benchBPTT(b, lstm.PrecisionFP64) }
func BenchmarkBPTTSingleThreadFP32(b *testing.B) { benchBPTT(b, lstm.PrecisionFP32) }

// BenchmarkExtraction measures one full MoSConS extraction on a collected
// trace (training excluded).
func BenchmarkExtraction(b *testing.B) {
	w := sharedWorkbench(b)
	samples := w.Tested[len(w.Tested)-1].Samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Models.Extract(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison regenerates the §I/§VII framing comparison:
// the prior MPS attack's single recovered number vs MoSConS's structure.
func BenchmarkBaselineComparison(b *testing.B) {
	w := sharedWorkbench(b)
	var perIter float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.CompareBaseline()
		if err != nil {
			b.Fatal(err)
		}
		perIter = res.BaselineSamplesPerIter
	}
	b.ReportMetric(perIter, "baseline-samples/iter")
}

// BenchmarkShortcutStudy regenerates the §IV-C shortcut ambiguity study.
func BenchmarkShortcutStudy(b *testing.B) {
	w := sharedWorkbench(b)
	var visible, placed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.StudyShortcuts()
		if err != nil {
			b.Fatal(err)
		}
		visible = float64(res.RawShortcuts)
		placed = float64(res.HeuristicCorrect)
	}
	b.ReportMetric(visible, "channel-visible-shortcuts")
	b.ReportMetric(placed, "heuristic-correct")
}

// BenchmarkRNNStudy regenerates the §VI limitation-6 study.
func BenchmarkRNNStudy(b *testing.B) {
	w := sharedWorkbench(b)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.StudyRNN()
		if err != nil {
			b.Fatal(err)
		}
		acc = res.LayerAcc
	}
	b.ReportMetric(acc*100, "rnn-layer-acc-%")
}

// BenchmarkMultiTenant regenerates the §VI limitation-5 study.
func BenchmarkMultiTenant(b *testing.B) {
	w := sharedWorkbench(b)
	var two, four float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := w.MultiTenant()
		if err != nil {
			b.Fatal(err)
		}
		two, four = res.TwoTenantAcc, res.FourTenantAcc
	}
	b.ReportMetric(two*100, "two-tenant-acc-%")
	b.ReportMetric(four*100, "four-tenant-acc-%")
}

// BenchmarkAblationCounterGroups regenerates the §IV counter-selection
// ablation.
func BenchmarkAblationCounterGroups(b *testing.B) {
	sc := benchScale()
	var full, one float64
	for i := 0; i < b.N; i++ {
		res, err := eval.AblationCounterGroups(sc)
		if err != nil {
			b.Fatal(err)
		}
		full, one = res.FullAcc, res.OneGroupAcc
	}
	b.ReportMetric(full*100, "all-groups-acc-%")
	b.ReportMetric(one*100, "one-group-acc-%")
}

// BenchmarkLSTMTraining measures the inference-model substrate's training
// throughput (sequences x epochs per op).
func BenchmarkLSTMTraining(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var seqs []lstm.Sequence
	for i := 0; i < 6; i++ {
		in := make([][]float64, 40)
		labels := make([]int, 40)
		for t := range in {
			v := make([]float64, attack.FeatureDim)
			for j := range v {
				v[j] = rng.Float64()
			}
			in[t] = v
			labels[t] = rng.Intn(4)
		}
		seqs = append(seqs, lstm.Sequence{Inputs: in, Labels: labels})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := lstm.New(lstm.Config{
			InputDim: attack.FeatureDim, Hidden: 40, Classes: 4, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Train(seqs, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBDTTraining measures the Mgap substrate's training throughput.
func BenchmarkGBDTTraining(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		row := make([]float64, attack.FeatureDim)
		for j := range row {
			row[j] = rng.Float64()
		}
		x = append(x, row)
		if row[0]+row[3] > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.Train(x, y, gbdt.Config{Rounds: 30}); err != nil {
			b.Fatal(err)
		}
	}
}
